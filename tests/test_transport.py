"""Tests for the shared-memory document transport (`repro.runtime.transport`).

The contract: a packed chunk round-trips byte-identically through a
shared-memory segment (any codec, empty documents included); segment
lifetime is explicit — refcounted in flight, recycled through the free
pool on release, unlinked by the owner on close, never left in
``/dev/shm``; the ``auto`` negotiation falls back to the pipe below the
size threshold and on platforms without POSIX shm; and the ``mmap``
read path decodes files identically to a plain read.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.runtime import transport as transport_module
from repro.runtime.transport import (
    ShmChunk,
    SharedMemoryTransport,
    TransportUnavailableError,
    create_transport,
    open_chunk,
    read_document,
    release_chunk,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

DOCS = ["say hi ho", "", "a1bc2", "ümläut ẞtreet", "x" * 10_000]


def dev_shm_segments() -> set[str]:
    """This engine's segments currently present in /dev/shm."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return set()
    return {os.path.basename(p) for p in glob.glob("/dev/shm/sjdoc-*")}


class TestPackRoundTrip:
    def test_documents_round_trip_byte_identically(self):
        t = SharedMemoryTransport(force=True)
        try:
            ref = t.pack(DOCS)
            assert isinstance(ref, ShmChunk)
            view = open_chunk(ref)
            assert list(view) == DOCS
            assert [view[i] for i in range(len(view))] == DOCS
            release_chunk(view)
        finally:
            t.close()

    def test_empty_documents_keep_their_slots(self):
        t = SharedMemoryTransport(force=True)
        try:
            docs = ["", "", "a", ""]
            view = open_chunk(t.pack(docs))
            assert list(view) == docs
            release_chunk(view)
        finally:
            t.close()

    def test_wire_codec_is_lossless_whatever_the_file_codec(self):
        # The wire codec is a fixed lossless constant: non-ASCII text
        # and even lone surrogates (surrogateescape-decoded files)
        # round-trip exactly — the worker must evaluate the exact
        # string the serial path would, never a re-encoded lossy copy.
        from repro.runtime.transport import WIRE_ENCODING

        t = SharedMemoryTransport(force=True)
        try:
            docs = ["café", "naïve £5", "stray\udce9byte", "汉字"]
            ref = t.pack(docs)
            assert ref.encoding == WIRE_ENCODING
            view = open_chunk(ref)
            assert list(view) == docs
            release_chunk(view)
        finally:
            t.close()

    def test_pipe_payload_passes_through(self):
        items = ["a", "b"]
        assert open_chunk(items) is items
        release_chunk(items)  # no-op, must not raise


class TestNegotiation:
    def test_below_threshold_stays_on_the_pipe(self):
        t = SharedMemoryTransport(threshold=1024)
        try:
            assert t.pack(["tiny", "docs"]) is None
            assert t.live_segments() == ()
        finally:
            t.close()

    def test_above_threshold_packs(self):
        t = SharedMemoryTransport(threshold=1024)
        try:
            ref = t.pack(["x" * 2048])
            assert isinstance(ref, ShmChunk)
            assert len(t.live_segments()) == 1
            t.release(ref)
        finally:
            t.close()

    def test_multibyte_indeterminate_band_measures_real_bytes(self):
        # 600 chars of a 2-byte character: the char count (600) is
        # under a 1000-byte threshold but the encoded payload (1200)
        # is over it — the negotiation must encode to find out.
        t = SharedMemoryTransport(threshold=1000)
        try:
            ref = t.pack(["é" * 600])
            assert isinstance(ref, ShmChunk)
            t.release(ref)
            assert t.pack(["é" * 400]) is None  # 800 bytes: pipe
        finally:
            t.close()

    def test_create_transport_modes(self):
        assert create_transport("pipe") is None
        t = create_transport("shm")
        assert t is not None and t.force
        t.close()
        t = create_transport("auto", shm_threshold=123)
        assert t is not None and not t.force and t.threshold == 123
        t.close()
        with pytest.raises(ValueError):
            create_transport("carrier-pigeon")

    def test_unavailable_platform_falls_back_or_raises(self, monkeypatch):
        monkeypatch.setattr(transport_module, "shm_available", lambda: False)
        assert transport_module.create_transport("auto") is None
        with pytest.raises(TransportUnavailableError):
            transport_module.create_transport("shm")


class TestSegmentLifetime:
    def test_refcount_release_recycles_then_close_unlinks(self):
        t = SharedMemoryTransport(force=True)
        try:
            ref = t.pack(["payload"] * 4)
            assert ref.segment in dev_shm_segments()
            t.acquire(ref)
            t.release(ref)
            assert t.live_segments() == (ref.segment,)  # still one ref
            t.release(ref)
            assert t.live_segments() == ()
            # Released, not destroyed: pooled for the next chunk.
            assert ref.segment in t.pooled_segments()
            assert ref.segment in dev_shm_segments()
        finally:
            t.close()
        assert ref.segment not in dev_shm_segments()

    def test_pool_reuses_segments_of_the_same_size_class(self):
        t = SharedMemoryTransport(force=True)
        try:
            first = t.pack(["a" * 5000])
            t.release(first)
            second = t.pack(["b" * 5000])
            assert second.segment == first.segment  # recycled, not new
            view = open_chunk(second)
            assert list(view) == ["b" * 5000]
            release_chunk(view)
            t.release(second)
        finally:
            t.close()
        assert not dev_shm_segments() & {first.segment}

    def test_release_is_idempotent_past_zero(self):
        t = SharedMemoryTransport(force=True)
        try:
            ref = t.pack(["doc"])
            t.release(ref)
            t.release(ref)  # no-op, must not raise or double-free
        finally:
            t.close()

    def test_close_sweeps_in_flight_segments(self):
        t = SharedMemoryTransport(force=True)
        ref = t.pack(["doc"] * 3)
        assert ref.segment in dev_shm_segments()
        t.close()  # task never resolved — the sweep must still unlink
        assert ref.segment not in dev_shm_segments()


class TestBudgetGovernance:
    """The shm capacity budget: overruns degrade to the pipe, the pool
    yields its reservation to live traffic, and degraded episodes never
    confuse segment accounting or the close() sweep."""

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            SharedMemoryTransport(budget=0)
        t = create_transport("shm", shm_budget=123)
        try:
            assert t.budget == 123
        finally:
            t.close()
        assert create_transport("auto", shm_budget=None).budget is None

    def test_oversized_chunk_degrades_to_pipe(self):
        t = SharedMemoryTransport(force=True, budget=8192)
        try:
            # 20000 bytes → 32768-byte size class: cannot ever fit.
            assert t.pack(["x" * 20000]) is None
            stats = t.stats()
            assert stats["degraded_to_pipe"] == 1
            assert stats["bytes_in_flight"] == 0
            # A chunk that fits still takes the fast path.
            ref = t.pack(["x" * 2000])
            assert isinstance(ref, ShmChunk)
            assert t.stats()["bytes_in_flight"] == 4096
            t.release(ref)
        finally:
            t.close()
        assert not dev_shm_segments()

    def test_pool_yields_budget_to_live_traffic(self):
        t = SharedMemoryTransport(force=True, budget=8192)
        try:
            first = t.pack(["a" * 3000])  # 4096-byte class
            t.release(first)  # pooled: still holds its reservation
            assert t.stats()["bytes_pooled"] == 4096
            # 8192-byte class would overrun 4096+8192 > 8192: the idle
            # pooled segment is evicted (destroyed) to make room.
            second = t.pack(["b" * 6000])
            assert isinstance(second, ShmChunk)
            stats = t.stats()
            assert stats["degraded_to_pipe"] == 0
            assert stats["bytes_pooled"] == 0
            assert stats["bytes_in_flight"] == 8192
            assert first.segment not in dev_shm_segments()
            view = open_chunk(second)
            assert list(view) == ["b" * 6000]
            release_chunk(view)
            t.release(second)
        finally:
            t.close()
        assert not dev_shm_segments()

    def test_injected_enospc_counts_and_falls_back(self):
        t = SharedMemoryTransport(force=True)
        try:
            t.inject_enospc({0, 2})
            assert t.pack(["doc"]) is None  # pack 0: injected failure
            ref = t.pack(["doc"])  # pack 1: healthy
            assert isinstance(ref, ShmChunk)
            assert t.pack(["doc"]) is None  # pack 2: injected failure
            assert t.stats()["degraded_to_pipe"] == 2
            t.release(ref)
        finally:
            t.close()
        assert not dev_shm_segments()

    def test_close_during_degraded_episode_unlinks_everything(self):
        """A close landing mid-degradation (live segment held by an
        unresolved task, later chunks riding the pipe) must still
        unlink every owned segment — degraded chunks own nothing, so
        they must not shadow the ones that do."""
        t = SharedMemoryTransport(force=True, budget=64 * 1024)
        ref = t.pack(["payload"] * 8)  # in flight, never released
        assert isinstance(ref, ShmChunk)
        t.inject_enospc({1})
        assert t.pack(["degraded"] * 8) is None  # the episode
        assert t.stats()["degraded_to_pipe"] == 1
        t.close()
        assert not dev_shm_segments()
        stats = t.stats()
        assert stats["bytes_in_flight"] == 0
        assert stats["bytes_pooled"] == 0


class TestOrphanJanitor:
    """Session attribution + the crash-orphan sweep: segments name
    their owning driver, a pidfile backs the liveness check, the sweep
    reaps only dead sessions, and the ``weakref.finalize`` hook keeps
    clean-but-forgetful exits off the janitor's plate entirely."""

    def test_segments_carry_session_tag_backed_by_pidfile(self):
        t = SharedMemoryTransport(force=True)
        try:
            ref = t.pack(["payload"] * 4)
            assert ref.segment.startswith(f"sjdoc-{t.session}-")
            pidfile = os.path.join(
                transport_module._session_dir(), f"{t.session}.pid"
            )
            with open(pidfile) as handle:
                assert int(handle.read().split()[0]) == os.getpid()
            t.release(ref)
        finally:
            t.close()
        # close() retires the liveness record along with the segments.
        assert not os.path.exists(pidfile)

    def test_sweep_never_reaps_a_live_session(self):
        from repro.runtime.transport import sweep_orphaned_segments

        t = SharedMemoryTransport(force=True)
        try:
            ref = t.pack(["payload"] * 4)  # in flight, owner alive
            swept = sweep_orphaned_segments()
            assert ref.segment not in swept
            assert ref.segment in dev_shm_segments()
            view = open_chunk(ref)  # still attachable and intact
            assert list(view) == ["payload"] * 4
            release_chunk(view)
            t.release(ref)
        finally:
            t.close()

    def test_orphan_without_pidfile_is_swept(self):
        from repro.runtime.transport import (
            _create_untracked,
            sweep_orphaned_segments,
        )

        # A segment tagged with a session that never wrote a pidfile is
        # by definition a crash leftover (drivers write the pidfile
        # before their first segment).
        name = "sjdoc-sdeadbeef-999"
        segment = _create_untracked(name, 64)
        segment.close()
        try:
            swept = sweep_orphaned_segments()
            assert name in swept
            assert name not in dev_shm_segments()
        finally:
            if name in dev_shm_segments():  # pragma: no cover - cleanup
                segment.unlink()

    def test_dead_pid_session_swept_and_pidfile_pruned(self):
        import subprocess
        import sys

        from repro.runtime.transport import (
            _create_untracked,
            sweep_orphaned_segments,
        )

        # Borrow a genuinely dead pid from a finished child.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        tag = "s0feedbeef"
        pidfile = os.path.join(
            transport_module._session_dir(), f"{tag}.pid"
        )
        with open(pidfile, "w") as handle:
            handle.write(f"{child.pid}\n")
        name = f"sjdoc-{tag}-1"
        segment = _create_untracked(name, 64)
        segment.close()
        try:
            swept = sweep_orphaned_segments()
            assert name in swept
            assert not os.path.exists(pidfile)  # stale record pruned
        finally:
            if name in dev_shm_segments():  # pragma: no cover - cleanup
                segment.unlink()

    def test_startup_sweep_counts_in_stats(self):
        from repro.runtime.transport import _create_untracked

        name = "sjdoc-scafef00d-7"
        segment = _create_untracked(name, 64)
        segment.close()
        t = SharedMemoryTransport(force=True)
        try:
            assert name not in dev_shm_segments()
            assert t.stats()["orphans_swept"] >= 1
        finally:
            t.close()

    def test_finalizer_unlinks_on_interpreter_exit_without_close(self):
        import subprocess
        import sys

        # A driver that packs and exits normally without ever calling
        # close(): weakref.finalize/atexit must unlink its segments —
        # the janitor is for kill -9, not for forgetfulness.
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        script = (
            "import sys; sys.path.insert(0, %r)\n"
            "from repro.runtime.transport import SharedMemoryTransport\n"
            "t = SharedMemoryTransport(force=True)\n"
            "ref = t.pack(['payload'] * 8)\n"
            "print(ref.segment, flush=True)\n"
            # no t.close(), no release: fall off the end.
        ) % os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert out.returncode == 0, out.stderr
        name = out.stdout.strip()
        assert name.startswith("sjdoc-")
        assert name not in dev_shm_segments()

    def test_sigkilled_driver_strands_then_sweep_reaps(self):
        import signal
        import subprocess
        import sys

        from repro.runtime.transport import sweep_orphaned_segments

        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        script = (
            "import os, signal, sys; sys.path.insert(0, %r)\n"
            "from repro.runtime.transport import SharedMemoryTransport\n"
            "t = SharedMemoryTransport(force=True)\n"
            "ref = t.pack(['payload'] * 8)\n"
            "print(ref.segment, flush=True)\n"
            "os.kill(os.getpid(), signal.SIGKILL)\n"
        ) % os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert out.returncode == -signal.SIGKILL
        name = out.stdout.strip()
        # No hook could run: the segment is stranded...
        assert name in dev_shm_segments()
        # ...until the janitor attributes it to a dead session.
        assert name in sweep_orphaned_segments()
        assert name not in dev_shm_segments()


class TestReadDocument:
    def test_mmap_and_plain_reads_agree(self, tmp_path):
        path = tmp_path / "doc.txt"
        text = "läne one\nline two\n" * 500
        path.write_text(text, encoding="utf-8")
        plain = read_document(str(path), mmap_threshold=10**9)
        mapped = read_document(str(path), mmap_threshold=1)
        assert plain == mapped == text

    def test_latin1_and_error_handlers(self, tmp_path):
        path = tmp_path / "legacy.txt"
        path.write_bytes(b"caf\xe9 society")
        with pytest.raises(UnicodeDecodeError):
            read_document(str(path))
        assert read_document(str(path), encoding="latin-1") == "café society"
        assert (
            read_document(str(path), errors="replace") == "caf� society"
        )
        # The mmap path honors the same codec knobs.
        assert (
            read_document(str(path), encoding="latin-1", mmap_threshold=1)
            == "café society"
        )

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            read_document(str(tmp_path / "absent.txt"))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert read_document(str(path), mmap_threshold=0) == ""
