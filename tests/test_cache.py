"""Tests for the process-wide bounded LRU compilation cache.

The contract: bounded size with least-recently-used eviction, accurate
hit/miss/eviction counters, sharing across evaluator instances, and —
because keys are structural, never object ids — a recycled slot can
never serve a stale compilation for a different query.
"""

from __future__ import annotations

import pytest

from repro.queries import CompiledEvaluator, RegexCQ
from repro.runtime.cache import (
    HitCounter,
    LRUCache,
    WeakCache,
    cache_metrics,
    compilation_cache,
)
from repro.spans import Span


class TestLRUCache:
    def test_bounded_size(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, str(i))
        assert len(cache) == 3
        assert cache.stats().evictions == 7

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("a")  # refresh: "b" is now the oldest
        cache.put("d", 4)
        assert cache.keys() == ["c", "a", "d"]
        assert "b" not in cache
        assert cache.get("b") is None

    def test_get_or_create_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get_or_create("a", lambda: 99)  # hit: "b" becomes oldest
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_counters(self):
        cache = LRUCache(2)
        assert cache.get("x") is None
        cache.put("x", 1)
        assert cache.get("x") == 1
        cache.get_or_create("y", lambda: 2)
        cache.get_or_create("y", lambda: 3)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (2, 2)
        assert stats.hit_rate == 0.5

    def test_get_or_create_runs_factory_once_per_miss(self):
        cache = LRUCache(4)
        calls = []
        for _ in range(3):
            cache.get_or_create("k", lambda: calls.append(1) or "v")
        assert len(calls) == 1

    def test_reentrant_factory(self):
        # CompiledEvaluator.runtime's factory compiles via
        # compile_static against the *same* cache; the lock must allow
        # that re-entry.
        cache = LRUCache(4)

        def outer():
            return cache.get_or_create("inner", lambda: "base") + "+outer"

        assert cache.get_or_create("outer", outer) == "base+outer"
        assert cache.get("inner") == "base"

    def test_clear_keeps_cumulative_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_duplicate_registration_rejected(self):
        name = "test-cache-duplicate-registration"
        LRUCache(2, name=name)
        with pytest.raises(ValueError):
            LRUCache(2, name=name)


class TestProcessWideSharing:
    def test_cross_evaluator_sharing(self):
        # Independent evaluators (fresh instances, as the CLI and each
        # worker create them) share one compilation per structure.
        query = RegexCQ(["x"], [".*x{(ab)+}.*"])
        first = CompiledEvaluator().runtime(query)
        second = CompiledEvaluator().runtime(RegexCQ(["x"], [".*x{(ab)+}.*"]))
        third = CompiledEvaluator().compile_static(query)
        fourth = CompiledEvaluator().compile_static(query)
        assert first is not None and first is second
        assert third is fourth

    def test_default_cache_is_the_module_singleton(self):
        assert CompiledEvaluator().cache is compilation_cache()
        assert CompiledEvaluator().cache is CompiledEvaluator().cache

    def test_metrics_exposed_by_name(self):
        CompiledEvaluator().runtime(RegexCQ(["x"], [".*x{(ba)+}.*"]))
        metrics = cache_metrics()
        assert "compilation" in metrics
        assert "automaton-tables" in metrics
        assert metrics["compilation"].hits + metrics["compilation"].misses > 0


class TestNoStaleCompilations:
    """Eviction + recycling must never resurrect a wrong artifact."""

    def test_recycled_fingerprint_recompiles_correctly(self):
        # Tiny cache: qa's entries are evicted by qb's, then qa is
        # compiled again.  The recompiled artifact must answer exactly
        # like the first one did.
        cache = LRUCache(2)
        evaluator = CompiledEvaluator(cache=cache)
        qa = RegexCQ(["x"], [".*x{a+}.*"])
        qb = RegexCQ(["x"], [".*x{b+}.*"])
        expected = {
            mu["x"] for mu in evaluator.evaluate(qa, "baa")
        }
        assert expected == {Span(2, 3), Span(2, 4), Span(3, 4)}
        evaluator.evaluate(qb, "abb")  # evicts qa's entries (maxsize 2)
        assert cache.stats().evictions > 0
        again = {mu["x"] for mu in evaluator.evaluate(qa, "baa")}
        assert again == expected

    def test_distinct_queries_never_share_an_entry(self):
        cache = LRUCache(8)
        evaluator = CompiledEvaluator(cache=cache)
        qa = RegexCQ(["x"], [".*x{a+}.*"])
        qb = RegexCQ(["x"], [".*x{b+}.*"])
        ra = evaluator.runtime(qa)
        rb = evaluator.runtime(qb)
        assert ra is not rb
        # qb's answers come from qb's automaton, not a recycled qa slot.
        assert {mu["x"] for mu in rb.evaluate("abb")} == {
            Span(2, 3), Span(2, 4), Span(3, 4),
        }


class TestWeakCacheAndCounters:
    def test_weak_cache_counts_hits_and_misses(self):
        cache = WeakCache()

        class Key:
            pass

        key = Key()
        assert cache.get(key) is None
        value = cache.get_or_create(key, lambda: "v")
        assert value == "v"
        assert cache.get_or_create(key, lambda: "other") == "v"
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 2
        assert stats.maxsize is None

    def test_hit_counter(self):
        counter = HitCounter()
        counter.hit()
        counter.miss()
        counter.hit()
        stats = counter.stats()
        assert (stats.hits, stats.misses) == (2, 1)
