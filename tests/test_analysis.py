"""Tests for membership/emptiness decision procedures (vset.analysis)."""

import pytest

from repro.enumeration import enumerate_tuples
from repro.errors import SchemaError
from repro.spans import Span, SpanTuple
from repro.vset import (
    assignment_automaton,
    compile_regex,
    contains_tuple,
    is_empty_on,
    is_vset_functional,
)


class TestAssignmentAutomaton:
    def test_single_tuple_on_its_string(self):
        s = "abab"
        mu = {"x": Span(1, 3), "y": Span(3, 3)}
        probe = assignment_automaton(s, mu)
        assert is_vset_functional(probe)
        got = list(enumerate_tuples(probe, s))
        assert got == [SpanTuple(mu)]

    def test_empty_on_other_strings(self):
        probe = assignment_automaton("ab", {"x": Span(1, 2)})
        assert list(enumerate_tuples(probe, "ba")) == []
        assert list(enumerate_tuples(probe, "abc")) == []

    def test_span_must_fit(self):
        with pytest.raises(SchemaError):
            assignment_automaton("ab", {"x": Span(1, 9)})

    def test_empty_string(self):
        probe = assignment_automaton("", {"x": Span(1, 1)})
        assert list(enumerate_tuples(probe, "")) == [
            SpanTuple({"x": Span(1, 1)})
        ]


class TestContainsTuple:
    def test_membership_agrees_with_enumeration(self):
        automaton = compile_regex(".*x{a+}.*")
        s = "aab"
        answers = set(enumerate_tuples(automaton, s))
        for candidate in Span.all_spans(s):
            mu = SpanTuple({"x": candidate})
            assert contains_tuple(automaton, s, mu) == (mu in answers)

    def test_two_variable_membership(self):
        automaton = compile_regex(".*x{a}.*y{b}.*")
        s = "ab"
        inside = SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})
        outside = SpanTuple({"x": Span(2, 3), "y": Span(1, 2)})
        assert contains_tuple(automaton, s, inside)
        assert not contains_tuple(automaton, s, outside)

    def test_schema_mismatch_rejected(self):
        automaton = compile_regex("x{a}")
        with pytest.raises(SchemaError):
            contains_tuple(automaton, "a", SpanTuple({"z": Span(1, 2)}))

    def test_boolean_spanner_membership(self):
        automaton = compile_regex(".*ab.*")
        assert contains_tuple(automaton, "zab", SpanTuple({}))
        assert not contains_tuple(automaton, "zzz", SpanTuple({}))


class TestIsEmptyOn:
    def test_empty_and_nonempty(self):
        automaton = compile_regex(".*x{ab}.*")
        assert not is_empty_on(automaton, "zabz")
        assert is_empty_on(automaton, "zzz")

    def test_agrees_with_enumeration(self):
        automaton = compile_regex("x{a+}b")
        for s in ("", "b", "ab", "aab", "ba"):
            assert is_empty_on(automaton, s) == (
                not list(enumerate_tuples(automaton, s))
            )


class TestMembershipProperty:
    def test_membership_equals_enumeration_on_families(self):
        """contains_tuple must agree with enumeration over every
        candidate tuple, across a family of spanners and strings."""
        cases = [
            (".*x{a+}.*", "aaba"),
            ("x{a*}b", "aab"),
            (".*x{[ab]}b.*", "abab"),
        ]
        for pattern, s in cases:
            automaton = compile_regex(pattern)
            answers = set(enumerate_tuples(automaton, s))
            for span in Span.all_spans(s):
                mu = SpanTuple({"x": span})
                assert contains_tuple(automaton, s, mu) == (mu in answers), (
                    pattern,
                    s,
                    span,
                )
