"""Tests for multiprocess corpus sharding (``ParallelSpanner``).

The contract: whatever the worker count, chunking or start method, the
parallel engine yields **exactly** the serial ``CompiledSpanner``
output — same tuples, same radix order, same per-document grouping, in
input order — and ``workers=1`` never touches :mod:`multiprocessing`.
"""

from __future__ import annotations

import pytest

from repro.runtime import CompiledSpanner, ParallelSpanner
from repro.runtime import parallel as parallel_module
from repro.vset import compile_regex, join

FORMULA = "(ε|.*[^a-z])x{[a-z]+}([^a-z].*|ε)"

DOCS = [
    "say hi ho",
    "",
    "a1bc2",
    "UPPER lower",
    "zzz",
    "the quick brown fox",
    "no-match-HERE-404",
    "ab cd ab",
] * 4  # 32 docs: several chunks at chunk_size 3


@pytest.fixture(scope="module")
def serial_output():
    spanner = CompiledSpanner(FORMULA)
    return list(spanner.evaluate_many(DOCS))


class TestParallelMatchesSerial:
    def test_two_workers_identical_output(self, serial_output):
        engine = ParallelSpanner(FORMULA, workers=2, chunk_size=3)
        assert list(engine.evaluate_many(DOCS)) == serial_output

    def test_chunk_boundaries_do_not_matter(self, serial_output):
        for chunk_size in (1, 5, 100):
            engine = ParallelSpanner(FORMULA, workers=2, chunk_size=chunk_size)
            assert list(engine.evaluate_many(DOCS)) == serial_output

    def test_more_workers_than_documents(self):
        engine = ParallelSpanner("a*x{a*}a*", workers=4, chunk_size=1)
        docs = ["a", "aa"]
        serial = list(CompiledSpanner("a*x{a*}a*").evaluate_many(docs))
        assert list(engine.evaluate_many(docs)) == serial

    def test_joined_marker_set_automaton(self):
        joined = join(compile_regex(".*x{a+}.*"), compile_regex(".*y{b+}.*"))
        docs = ["abab", "aabb", "ba", "aaa", "bbbb"] * 3
        serial = list(CompiledSpanner(joined).evaluate_many(docs))
        engine = ParallelSpanner(joined, workers=2, chunk_size=2)
        assert list(engine.evaluate_many(docs)) == serial

    def test_limit_caps_per_document(self, serial_output):
        engine = ParallelSpanner(FORMULA, workers=2, chunk_size=3)
        capped = list(engine.evaluate_many(DOCS, limit=2))
        assert capped == [per_doc[:2] for per_doc in serial_output]
        # workers=1 fallback honors the same cap.
        serial_engine = ParallelSpanner(FORMULA, workers=1)
        assert list(serial_engine.evaluate_many(DOCS, limit=2)) == capped

    def test_count_many(self):
        engine = ParallelSpanner("a*x{a*}a*", workers=2, chunk_size=2)
        docs = ["", "a", "aa", "aaa", "b"] * 2
        serial = list(CompiledSpanner("a*x{a*}a*").count_many(docs))
        assert list(engine.count_many(docs)) == serial
        capped = list(engine.count_many(docs, cap=3))
        assert capped == [min(c, 3) for c in serial]

    def test_spawn_start_method(self, serial_output):
        engine = ParallelSpanner(
            FORMULA, workers=2, chunk_size=8, mp_context="spawn"
        )
        assert list(engine.evaluate_many(DOCS[:16])) == serial_output[:16]

    def test_persistent_pool_context_manager(self, serial_output):
        with ParallelSpanner(FORMULA, workers=2, chunk_size=4) as engine:
            assert engine._pool is not None
            first = list(engine.evaluate_many(DOCS))
            second = list(engine.evaluate_many(DOCS))
        assert first == serial_output and second == serial_output
        assert engine._pool is None  # closed on exit


class TestSerialFallback:
    def test_workers_one_never_touches_multiprocessing(
        self, serial_output, monkeypatch
    ):
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("workers=1 must not create a pool")

        monkeypatch.setattr(parallel_module.multiprocessing, "get_context", boom)
        engine = ParallelSpanner(FORMULA, workers=1)
        assert list(engine.evaluate_many(DOCS)) == serial_output
        assert list(engine.count_many(DOCS[:4])) == [
            len(t) for t in serial_output[:4]
        ]

    def test_empty_corpus_creates_no_pool(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("empty corpus must not create a pool")

        engine = ParallelSpanner(FORMULA, workers=2)
        monkeypatch.setattr(engine, "_make_pool", boom)
        assert list(engine.evaluate_many([])) == []
        assert list(engine.evaluate_many(iter(()))) == []


class TestTransportModes:
    """pipe / shm / auto must be byte-interchangeable."""

    @pytest.mark.parametrize("mode", ["pipe", "shm", "auto"])
    def test_transport_matches_serial(self, serial_output, mode):
        from repro.runtime.transport import shm_available

        if mode == "shm" and not shm_available():
            pytest.skip("POSIX shared memory unavailable")
        engine = ParallelSpanner(
            FORMULA, workers=2, chunk_size=3, transport=mode
        )
        assert list(engine.evaluate_many(DOCS)) == serial_output

    def test_auto_negotiates_per_chunk(self, serial_output):
        from repro.runtime.transport import shm_available

        if not shm_available():
            pytest.skip("POSIX shared memory unavailable")
        # A tiny threshold forces every chunk through shared memory; a
        # huge one forces every chunk onto the pipe — identical output
        # either way.
        for threshold in (1, 10**9):
            engine = ParallelSpanner(
                FORMULA, workers=2, chunk_size=3,
                transport="auto", shm_threshold=threshold,
            )
            assert list(engine.evaluate_many(DOCS)) == serial_output

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            ParallelSpanner(FORMULA, workers=2, transport="carrier-pigeon")

    def test_forced_shm_raises_where_unavailable(self, monkeypatch):
        from repro.runtime import transport as transport_module
        from repro.runtime.transport import TransportUnavailableError

        monkeypatch.setattr(transport_module, "shm_available", lambda: False)
        with pytest.raises(TransportUnavailableError):
            ParallelSpanner(FORMULA, workers=2, transport="shm")

    def test_auto_falls_back_where_unavailable(self, serial_output,
                                               monkeypatch):
        # Simulate a platform without POSIX shm: auto must silently
        # ride the pipe and still match serial output exactly.
        from repro.runtime import transport as transport_module

        monkeypatch.setattr(transport_module, "shm_available", lambda: False)
        engine = ParallelSpanner(
            FORMULA, workers=2, chunk_size=3, transport="auto"
        )
        with engine:
            assert engine._pool._doc_transport is None
            assert list(engine.evaluate_many(DOCS)) == serial_output


class TestAbandonedStream:
    """Breaking out of a streaming generator must not poison the session."""

    def test_break_then_reuse_persistent_session(self, serial_output):
        # Regression: an abandoned evaluate_many on a persistent fleet
        # used to leave its pending chunk futures in flight; the next
        # call could then observe stale interleavings or exhaust
        # max_pending.  The generator's finally now cancels them.
        with ParallelSpanner(
            FORMULA, workers=2, chunk_size=1, max_pending=2
        ) as engine:
            for _ in range(3):  # break repeatedly: leaks would pile up
                stream = engine.evaluate_many(iter(DOCS))
                assert next(stream) == serial_output[0]
                stream.close()  # consumer breaks out mid-iteration
            # The session keeps serving, full batch, correct and
            # in-order, without deadlocking against max_pending.
            assert list(engine.evaluate_many(DOCS)) == serial_output
            # And the fleet drains to quiet: no unresolved tasks linger.
            import time as _time

            deadline = _time.time() + 10
            while _time.time() < deadline and engine._pool._tasks:
                _time.sleep(0.02)
            assert not engine._pool._tasks

    def test_break_with_shm_transport_leaves_no_segments(self):
        from repro.runtime.transport import shm_available

        if not shm_available():
            pytest.skip("POSIX shared memory unavailable")
        # Big documents (real segments) with exactly one match each,
        # so evaluation stays cheap and the test exercises transport.
        big_docs = [f"{'QQ ' * 1300}hi{i % 7}" for i in range(8)]
        serial = list(CompiledSpanner(FORMULA).evaluate_many(big_docs))
        with ParallelSpanner(
            FORMULA, workers=2, chunk_size=2, transport="shm"
        ) as engine:
            stream = engine.evaluate_many(iter(big_docs))
            next(stream)
            stream.close()
            assert list(engine.evaluate_many(big_docs)) == serial
        import glob
        import os

        if os.path.isdir("/dev/shm"):
            assert not glob.glob("/dev/shm/sjdoc-*")


class TestEncoding:
    """The encoding knob must reach every read site (satellite bugfix)."""

    def test_latin1_corpus_file_parallel_and_serial(self, tmp_path):
        path = tmp_path / "legacy.txt"
        path.write_bytes(b"ab caf\xe9 code=77 zz")
        expected_doc = "ab café code=77 zz"
        serial = list(CompiledSpanner(FORMULA).stream(expected_doc))
        for workers in (1, 2):
            engine = ParallelSpanner(
                FORMULA, workers=workers, encoding="latin-1"
            )
            [answers] = list(engine.evaluate_files([str(path)]))
            assert answers == serial

    def test_strict_default_still_raises(self, tmp_path):
        path = tmp_path / "legacy.txt"
        path.write_bytes(b"caf\xe9")
        engine = ParallelSpanner(FORMULA, workers=2, chunk_size=1)
        with pytest.raises(UnicodeDecodeError):
            list(engine.evaluate_files([str(path)]))

    def test_errors_replace_softens(self, tmp_path):
        path = tmp_path / "legacy.txt"
        path.write_bytes(b"hi \xff ho")
        engine = ParallelSpanner(FORMULA, workers=2, errors="replace")
        [answers] = list(engine.evaluate_files([str(path)]))
        serial = list(CompiledSpanner(FORMULA).stream("hi � ho"))
        assert answers == serial


class TestBackpressure:
    def test_input_read_ahead_is_bounded(self):
        # The dispatch loop must not slurp the whole (possibly
        # unbounded) input iterable: with chunk_size=1, max_pending=2,
        # the first result can be consumed while most of the input is
        # still unread.
        pulled = []

        def docs():
            for i in range(100):
                pulled.append(i)
                yield "a"

        engine = ParallelSpanner(
            "a*x{a*}a*", workers=2, chunk_size=1, max_pending=2
        )
        stream = engine.evaluate_many(docs())
        next(stream)
        assert len(pulled) <= 8, f"read {len(pulled)} docs ahead of one result"
        stream.close()  # abandon mid-stream: pool must tear down cleanly

    def test_results_arrive_lazily_in_order(self):
        engine = ParallelSpanner("a*x{a*}a*", workers=2, chunk_size=2)
        docs = ["a" * i for i in range(8)]
        serial = list(CompiledSpanner("a*x{a*}a*").evaluate_many(docs))
        stream = engine.evaluate_many(docs)
        got = [next(stream) for _ in range(3)]
        assert got == serial[:3]
        assert list(stream) == serial[3:]


class TestValidation:
    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ParallelSpanner(FORMULA, workers=0)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            ParallelSpanner(FORMULA, chunk_size=0)

    def test_invalid_max_pending(self):
        with pytest.raises(ValueError):
            ParallelSpanner(FORMULA, workers=2, max_pending=0)

    def test_wraps_existing_compiled_spanner(self):
        spanner = CompiledSpanner(FORMULA)
        engine = ParallelSpanner(spanner, workers=1)
        assert engine.spanner is spanner
        assert engine.variables == spanner.variables

    def test_repr(self):
        engine = ParallelSpanner(FORMULA, workers=2)
        assert "workers=2" in repr(engine)


class TestFileDispatch:
    """``evaluate_files``: paths in, worker-side reads, tuples out."""

    @pytest.fixture()
    def corpus_files(self, tmp_path):
        paths = []
        for i, doc in enumerate(DOCS[:10]):
            path = tmp_path / f"doc{i}.txt"
            path.write_text(doc, encoding="utf-8")
            paths.append(str(path))
        return paths

    def test_matches_in_memory_evaluation(self, corpus_files, serial_output):
        with ParallelSpanner(FORMULA, workers=2, chunk_size=3) as engine:
            from_files = list(engine.evaluate_files(corpus_files))
        assert from_files == serial_output[:10]

    def test_serial_fallback_and_limit(self, corpus_files, serial_output):
        engine = ParallelSpanner(FORMULA, workers=1)
        capped = list(engine.evaluate_files(corpus_files, limit=1))
        assert capped == [doc[:1] for doc in serial_output[:10]]

    def test_worker_limit(self, corpus_files, serial_output):
        with ParallelSpanner(FORMULA, workers=2, chunk_size=2) as engine:
            capped = list(engine.evaluate_files(corpus_files, limit=2))
        assert capped == [doc[:2] for doc in serial_output[:10]]

    def test_missing_file_raises(self, corpus_files):
        with ParallelSpanner(FORMULA, workers=2, chunk_size=3) as engine:
            with pytest.raises(OSError):
                list(engine.evaluate_files(corpus_files + ["/nonexistent/x"]))
