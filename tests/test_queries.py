"""Tests for CQ/UCQ construction and the two evaluation strategies."""

import pytest

from repro.errors import EvaluationError, QueryError
from repro.queries import (
    CanonicalEvaluator,
    CompiledEvaluator,
    EqualityAtom,
    PlanDecision,
    QueryEvaluator,
    RegexAtom,
    RegexCQ,
    RegexUCQ,
    choose_strategy,
    polynomial_bound_certificate,
)
from repro.queries.atoms import merge_equality_atoms
from repro.spans import Span, SpanTuple


class TestConstruction:
    def test_auto_naming(self):
        cq = RegexCQ(["x"], [".*x{a}.*", ".*x{a}b.*"])
        assert [a.name for a in cq.regex_atoms] == ["R0", "R1"]

    def test_explicit_atoms(self):
        atom = RegexAtom.make("Sen", ".*x{a}.*")
        cq = RegexCQ(["x"], [atom])
        assert cq.regex_atoms[0].name == "Sen"

    def test_duplicate_atom_names_rejected(self):
        a = RegexAtom.make("R", "x{a}")
        b = RegexAtom.make("R", "y{b}")
        with pytest.raises(QueryError):
            RegexCQ([], [a, b])

    def test_no_atoms_rejected(self):
        with pytest.raises(QueryError):
            RegexCQ([], [])

    def test_head_must_be_bound(self):
        with pytest.raises(QueryError):
            RegexCQ(["zzz"], ["x{a}"])

    def test_duplicate_head_rejected(self):
        with pytest.raises(QueryError):
            RegexCQ(["x", "x"], ["x{a}"])

    def test_equality_vars_must_occur_in_regex_atoms(self):
        with pytest.raises(QueryError):
            RegexCQ([], ["x{a}"], equalities=[("x", "ghost")])

    def test_equality_atom_validation(self):
        with pytest.raises(QueryError):
            EqualityAtom(("x",))
        with pytest.raises(QueryError):
            EqualityAtom(("x", "x"))

    def test_merge_equality_atoms(self):
        merged = merge_equality_atoms(
            [EqualityAtom(("x", "y")), EqualityAtom(("y", "z")), EqualityAtom(("p", "q"))]
        )
        groups = {atom.variables for atom in merged}
        assert groups == {("x", "y", "z"), ("p", "q")}

    def test_ucq_head_mismatch_rejected(self):
        with pytest.raises(QueryError):
            RegexUCQ(
                [RegexCQ(["x"], ["x{a}"]), RegexCQ(["y"], ["y{a}"])]
            )

    def test_ucq_shape(self):
        u = RegexUCQ(
            [
                RegexCQ(["x"], ["x{a}", "x{a}b*"]),
                RegexCQ(["x"], ["x{b}"]),
            ]
        )
        assert u.max_atom_count == 2
        assert not u.has_equalities
        assert len(u) == 2

    def test_str_rendering(self):
        cq = RegexCQ(["x"], ["x{a}"], equalities=[])
        assert "pi[x]" in str(cq)


class TestStrategyAgreement:
    """Both strategies must compute identical relations."""

    CASES = [
        (RegexCQ(["x", "y"], [".*x{a+}.*", ".*y{b+}.*"]), "aabba"),
        (RegexCQ(["x"], [".*x{a+}.*", ".*x{a+}b.*"]), "aabaa"),
        (RegexCQ([], [".*x{ab}.*"]), "zabz"),
        (RegexCQ([], [".*x{ab}.*"]), "zzz"),
        (
            RegexCQ(
                ["x", "y"],
                [".*x{a+}.*", ".*y{a+}.*"],
                equalities=[("x", "y")],
            ),
            "aba",
        ),
        (
            RegexUCQ(
                [
                    RegexCQ(["x"], [".*x{a+}.*"]),
                    RegexCQ(["x"], [".*x{b+}.*"]),
                ]
            ),
            "abab",
        ),
    ]

    @pytest.mark.parametrize("query, s", CASES)
    def test_agreement(self, query, s):
        canonical = CanonicalEvaluator().evaluate(query, s)
        compiled = CompiledEvaluator().evaluate(query, s)
        assert canonical == compiled

    def test_ucq_duplicate_dedup(self):
        # Same disjunct twice: answers must not repeat.
        u = RegexUCQ(
            [RegexCQ(["x"], ["x{a}"]), RegexCQ(["x"], ["x{a}"])]
        )
        rel = CompiledEvaluator().evaluate(u, "a")
        assert len(rel) == 1
        assert CanonicalEvaluator().evaluate(u, "a") == rel

    def test_cartesian_when_variable_disjoint(self):
        cq = RegexCQ(["x", "y"], ["x{a}.*", ".*y{b}"])
        rel = CanonicalEvaluator().evaluate(cq, "ab")
        assert rel == CompiledEvaluator().evaluate(cq, "ab")
        assert len(rel) == 1

    def test_compiled_stream_is_lazy_and_complete(self):
        cq = RegexCQ(["x"], [".*x{a*}.*"])
        stream = CompiledEvaluator().stream(cq, "aa")
        first = next(stream)
        rest = list(stream)
        assert len(rest) + 1 == 6

    def test_boolean_evaluations(self):
        cq = RegexCQ([], [".*x{ab}.*"])
        assert CanonicalEvaluator().evaluate_boolean(cq, "ab")
        assert CompiledEvaluator().evaluate_boolean(cq, "ab")
        assert not CanonicalEvaluator().evaluate_boolean(cq, "ba")
        assert not CompiledEvaluator().evaluate_boolean(cq, "ba")


class TestCanonicalInternals:
    def test_stats_expose_cardinalities(self):
        cq = RegexCQ(["x"], [".*x{a+}.*"])
        evaluator = CanonicalEvaluator()
        evaluator.evaluate(cq, "aaa")
        stats = evaluator.last_stats
        assert stats is not None
        assert stats.atom_cardinalities["R0"] == 6
        assert stats.used_yannakakis

    def test_atom_budget_enforced(self):
        cq = RegexCQ(["x"], [".*x{.*}.*"])
        evaluator = CanonicalEvaluator(atom_budget=3)
        with pytest.raises(EvaluationError):
            evaluator.evaluate(cq, "abcdefgh")

    def test_cyclic_query_uses_generic(self):
        tri = RegexCQ(
            [],
            [
                ".*x{a}.*y{a}.*",
                ".*y{a}.*z{a}.*",
                ".*x{a}.*z{a}.*",
            ],
        )
        evaluator = CanonicalEvaluator()
        result = evaluator.evaluate_boolean(tri, "aaa")
        assert result
        assert not evaluator.last_stats.used_yannakakis


class TestPlanner:
    def test_prefers_canonical_for_acyclic_bounded(self):
        cq = RegexCQ(["x"], [".*x{a+}.*"])
        decision = choose_strategy(cq, "aaa")
        assert decision.strategy == "canonical"
        assert "Theorem 3.5" in decision.reason

    def test_prefers_compiled_for_cyclic_small_k(self):
        tri = RegexCQ(
            [],
            [
                ".*x{a}.*y{a}.*",
                ".*y{a}.*z{a}.*",
                ".*x{a}.*z{a}.*",
            ],
        )
        decision = choose_strategy(tri, "aaa")
        assert decision.strategy == "compiled"

    def test_materialization_ceiling_pushes_to_compiled(self):
        cq = RegexCQ(["x"], [".*x{a+}.*"])
        decision = choose_strategy(cq, "a" * 50, materialization_ceiling=10)
        assert decision.strategy == "compiled"

    def test_forced_strategy(self):
        cq = RegexCQ(["x"], [".*x{a+}.*"])
        evaluator = QueryEvaluator()
        rel_auto = evaluator.evaluate(cq, "aa")
        rel_forced = evaluator.evaluate(cq, "aa", strategy="compiled")
        assert rel_auto == rel_forced
        assert evaluator.last_decision.reason == "forced by caller"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            QueryEvaluator().evaluate(
                RegexCQ([], ["x{a}"]), "a", strategy="quantum"
            )

    def test_decision_dataclass(self):
        decision = PlanDecision("canonical", "why", 10)
        assert decision.strategy == "canonical"


class TestBoundedCertificates:
    def test_bounded_variables_certificate(self):
        atom = RegexAtom.make("R", ".*x{a}.*")
        cert = polynomial_bound_certificate(atom)
        assert cert.bounded
        assert cert.kind == "bounded-variables"
        assert cert.degree == 2

    def test_key_attribute_certificate(self):
        # Five variables chained deterministically after x: x is a key.
        atom = RegexAtom.make(
            "R", "v{a*}w{b}x{a}y{b}z{a}"
        )
        cert = polynomial_bound_certificate(atom, max_variables=3)
        assert cert.bounded
        assert cert.kind == "key-attribute"

    def test_no_certificate(self):
        atom = RegexAtom.make(
            "R", ".*v{a}.*w{a}.*x{a}.*y{a}.*"
        )
        cert = polynomial_bound_certificate(atom, max_variables=3)
        assert not cert.bounded
        assert cert.degree is None
