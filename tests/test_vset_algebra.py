"""Tests for projection, union, renaming and join (Lemmas 3.8–3.10)."""

import pytest

from repro.errors import SchemaError
from repro.oracle import oracle_evaluate
from repro.enumeration import enumerate_tuples
from repro.spans import Span, SpanTuple
from repro.vset import (
    compile_regex,
    is_vset_functional,
    join,
    project,
    rename_variables,
    union,
)
from repro.vset.join import join_many


class TestProjection:
    def test_semantics_vs_oracle(self, check_against_oracle):
        automaton = compile_regex(".*x{a+}.*y{b+}.*")
        projected = project(automaton, ["x"])
        got = check_against_oracle(projected, "aab")
        want = {
            mu.restrict(["x"])
            for mu in oracle_evaluate(automaton, "aab")
        }
        assert got == want

    def test_projection_to_empty_is_boolean(self):
        automaton = compile_regex(".*x{a}.*")
        boolean = project(automaton, [])
        assert boolean.variables == frozenset()
        assert list(enumerate_tuples(boolean, "za")) == [SpanTuple({})]
        assert list(enumerate_tuples(boolean, "zz")) == []

    def test_projection_preserves_functionality(self):
        automaton = compile_regex("x{a}y{b}")
        assert is_vset_functional(project(automaton, ["y"]))

    def test_unknown_variable_rejected(self):
        with pytest.raises(SchemaError):
            project(compile_regex("x{a}"), ["zz"])

    def test_linear_time_shape(self):
        # Projection must not change state count.
        automaton = compile_regex(".*x{a+}.*y{b+}.*")
        assert project(automaton, ["x"]).n_states == automaton.n_states


class TestUnion:
    def test_semantics_vs_oracle(self, check_against_oracle):
        a1 = compile_regex(".*x{a}.*")
        a2 = compile_regex(".*x{b}.*")
        u = union([a1, a2])
        got = check_against_oracle(u, "ab")
        want = oracle_evaluate(a1, "ab") | oracle_evaluate(a2, "ab")
        assert got == want

    def test_duplicate_elimination_across_branches(self):
        # Both branches produce the same tuples; enumeration must not
        # repeat them (one-to-one correspondence with A_G's language).
        a = compile_regex("x{a}")
        u = union([a, compile_regex("x{a}")])
        assert list(enumerate_tuples(u, "a")) == [
            SpanTuple({"x": Span(1, 2)})
        ]

    def test_variable_set_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            union([compile_regex("x{a}"), compile_regex("y{a}")])

    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            union([])

    def test_many_operands(self, check_against_oracle):
        parts = [compile_regex(f".*x{{{ch}}}.*") for ch in "abc"]
        u = union(parts)
        got = check_against_oracle(u, "cab")
        assert len(got) == 3

    def test_functionality_preserved(self):
        u = union([compile_regex("x{a}"), compile_regex("x{b}")])
        assert is_vset_functional(u)


class TestRenaming:
    def test_rename_semantics(self):
        automaton = compile_regex("x{a}")
        renamed = rename_variables(automaton, {"x": "z"})
        assert renamed.variables == {"z"}
        tuples = list(enumerate_tuples(renamed, "a"))
        assert tuples == [SpanTuple({"z": Span(1, 2)})]

    def test_non_injective_rejected(self):
        automaton = compile_regex("x{a}y{b}")
        with pytest.raises(SchemaError):
            rename_variables(automaton, {"x": "y"})


class TestJoin:
    def test_disjoint_variables_is_intersection_product(
        self, check_against_oracle
    ):
        a1 = compile_regex(".*x{a+}.*")
        a2 = compile_regex(".*y{b+}.*")
        joined = join(a1, a2)
        got = check_against_oracle(joined, "aab")
        want = {
            m1.merge(m2)
            for m1 in oracle_evaluate(a1, "aab")
            for m2 in oracle_evaluate(a2, "aab")
        }
        assert got == want

    def test_shared_variable_agreement(self, check_against_oracle):
        a1 = compile_regex(".*x{a+}.*")
        a2 = compile_regex(".*x{a+}b.*")
        joined = join(a1, a2)
        got = check_against_oracle(joined, "aab")
        # x must be an a-run immediately followed by b.
        assert {str(mu["x"]) for mu in got} == {"[1, 3>", "[2, 3>"}

    def test_join_with_contradiction_is_empty(self):
        a1 = compile_regex("x{a}")
        a2 = compile_regex("x{b}")
        joined = join(a1, a2)
        assert joined.is_empty_language() or not list(
            enumerate_tuples(joined, "a")
        )

    def test_join_with_empty_language(self):
        a1 = compile_regex("x{a}")
        a2 = compile_regex("∅x{b}", require_functional=False)
        joined = join(a1, a2)
        assert joined.is_empty_language()

    def test_result_is_functional(self):
        joined = join(
            compile_regex(".*x{a+}.*"), compile_regex(".*y{b}.*x{a+}.*")
        )
        assert is_vset_functional(joined)

    def test_join_commutative_semantics(self):
        a1 = compile_regex(".*x{a}.*y{b}.*")
        a2 = compile_regex(".*y{b}.*z{a}.*")
        s = "aba"
        left = set(enumerate_tuples(join(a1, a2), s))
        right = set(enumerate_tuples(join(a2, a1), s))
        assert left == right

    def test_join_matches_relational_join(self):
        """Lemma 3.10's semantics: [[A1 ⋈ A2]] = [[A1]] ⋈ [[A2]]."""
        a1 = compile_regex(".*x{[ab]+}y{a}.*")
        a2 = compile_regex(".*y{a}z{b+}.*")
        s = "abab"
        joined = set(enumerate_tuples(join(a1, a2), s))
        rel1 = compile_regex(".*x{[ab]+}y{a}.*").evaluate(s)
        rel2 = compile_regex(".*y{a}z{b+}.*").evaluate(s)
        want = set(rel1.natural_join(rel2))
        assert joined == want

    def test_join_many_associativity(self):
        parts = [
            compile_regex(".*x{a}.*"),
            compile_regex(".*y{b}.*"),
            compile_regex(".*z{a}.*"),
        ]
        s = "aba"
        fold_left = set(enumerate_tuples(join_many(parts), s))
        other = set(
            enumerate_tuples(join(parts[0], join(parts[1], parts[2])), s)
        )
        assert fold_left == other

    def test_join_empty_string(self):
        a1 = compile_regex("x{}")
        a2 = compile_regex("y{}")
        joined = join(a1, a2)
        tuples = list(enumerate_tuples(joined, ""))
        assert tuples == [
            SpanTuple({"x": Span(1, 1), "y": Span(1, 1)})
        ]

    def test_join_many_rejects_empty(self):
        with pytest.raises(ValueError):
            join_many([])

    def test_empty_span_burst_clash(self, check_against_oracle):
        # a1 puts x at gap 2 and y at gap 3; a2 swaps them.  The join
        # must be empty: spans cannot agree.
        a1 = compile_regex("a(x{})b(y{})c")
        a2 = compile_regex("a(y{})b(x{})c")
        joined = join(a1, a2)
        got = check_against_oracle(joined, "abc")
        assert got == set()

    def test_same_gap_interleaving_joins(self, check_against_oracle):
        # Both operands place x and y at gap 2 but open them in
        # different orders inside the burst; configurations reconcile
        # the interleavings (the r1/r2 example before Example 2.6).
        a1 = compile_regex("a(x{})(y{})bc")
        a2 = compile_regex("a(y{})(x{})bc")
        joined = join(a1, a2)
        got = check_against_oracle(joined, "abc")
        assert got == {
            SpanTuple({"x": Span(2, 2), "y": Span(2, 2)})
        }
