"""Tests for the Theorem 3.3 enumerator, including the paper's examples."""

import pytest

from repro.enumeration import (
    SpannerEvaluator,
    build_evaluation_graph,
    decode_configuration_word,
    enumerate_tuples,
    measure_delays,
)
from repro.errors import NotFunctionalError
from repro.spans import Span, SpanTuple
from repro.vset import VSetAutomaton, compile_regex
from repro.vset.configurations import CLOSED, OPEN, WAITING, VariableConfiguration
from repro.alphabet import char_pred, close_marker, open_marker
from repro.automata.nfa import NFA


def _spans(tuples, var="x"):
    return sorted((t[var].start, t[var].end) for t in tuples)


class TestPaperExamples:
    def test_example_4_2_table(self):
        """[[A_fun]]("aa") is exactly the six tuples of Example 4.2."""
        automaton = compile_regex("a*x{a*}a*")
        got = _spans(enumerate_tuples(automaton, "aa"))
        assert got == [(1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 3)]

    def test_example_a1_table(self):
        """[[A]]("aaa") is exactly the ten tuples of Example A.1."""
        automaton = compile_regex("a*x{a*}a*")
        got = _spans(enumerate_tuples(automaton, "aaa"))
        assert got == [
            (1, 1), (1, 2), (1, 3), (1, 4),
            (2, 2), (2, 3), (2, 4),
            (3, 3), (3, 4),
            (4, 4),
        ]

    def test_example_a2_single_tuple(self):
        """Example A.2: exponentially many paths, single tuple."""
        # x{(a|aa)*} over a^n: every run spans the whole string, so
        # [[A]](s) = { x = [1, n+1> } despite ~2^n accepting paths.
        automaton = compile_regex("x{(a|aa)*}")
        for n in (3, 6, 9):
            got = list(enumerate_tuples(automaton, "a" * n))
            assert got == [SpanTuple({"x": Span(1, n + 1)})]

    def test_example_a1_graph_shape(self):
        """The A_G of Example A.1 has 3 states per inner level."""
        automaton = compile_regex("a*x{a*}a*").compacted()
        graph = build_evaluation_graph(automaton, "aaa")
        leveled = graph.leveled
        # Words have length N+1 = 4.
        assert leveled.n_slots == 4
        assert leveled.count_words() == 10


class TestEnumerationContracts:
    def test_radix_order(self):
        evaluator = SpannerEvaluator(compile_regex("a*x{a*}a*"), "aaaa")
        words = list(evaluator.configuration_words())
        keys = [tuple(k.sort_key() for k in w) for w in words]
        assert keys == sorted(keys)

    def test_no_duplicates(self):
        automaton = compile_regex(".*x{(a|b)+}.*")
        out = list(enumerate_tuples(automaton, "abab"))
        assert len(out) == len(set(out))

    def test_count_matches_enumeration(self):
        automaton = compile_regex(".*x{a+}.*y{b+}.*")
        s = "aabbab"
        evaluator = SpannerEvaluator(automaton, s)
        assert evaluator.count() == len(list(evaluator))

    def test_empty_string_single_tuple(self):
        automaton = compile_regex("x{}")
        assert list(enumerate_tuples(automaton, "")) == [
            SpanTuple({"x": Span(1, 1)})
        ]

    def test_empty_string_no_match(self):
        automaton = compile_regex("x{a}")
        assert list(enumerate_tuples(automaton, "")) == []

    def test_empty_language(self):
        automaton = compile_regex("∅", require_functional=False)
        automaton = VSetAutomaton(automaton.nfa, set())
        evaluator = SpannerEvaluator(automaton, "abc")
        assert evaluator.is_empty()
        assert list(evaluator) == []

    def test_no_match_on_string(self):
        automaton = compile_regex("x{a}")
        evaluator = SpannerEvaluator(automaton, "bbb")
        assert evaluator.is_empty()
        assert evaluator.count() == 0

    def test_boolean_spanner_true_false(self):
        automaton = compile_regex(".*ab.*")
        assert list(enumerate_tuples(automaton, "zabz")) == [SpanTuple({})]
        assert list(enumerate_tuples(automaton, "zz")) == []

    def test_non_functional_input_rejected(self):
        bad = compile_regex("x{a}x{b}", require_functional=False)
        with pytest.raises(NotFunctionalError):
            SpannerEvaluator(bad, "ab")

    def test_unclosed_variable_rejected(self):
        nfa = NFA()
        a, b = nfa.add_state(), nfa.add_state()
        nfa.set_initial(a)
        nfa.add_final(b)
        nfa.add_transition(a, open_marker("x"), b)
        with pytest.raises(NotFunctionalError):
            SpannerEvaluator(VSetAutomaton(nfa, {"x"}), "")

    def test_graph_statistics_exposed(self):
        evaluator = SpannerEvaluator(compile_regex("a*x{a*}a*"), "aa")
        assert evaluator.graph_nodes > 0
        assert evaluator.graph_edges > 0

    def test_multiple_variables(self, check_against_oracle):
        automaton = compile_regex(".*x{a+}y{b+}.*")
        check_against_oracle(automaton, "aabba")

    def test_marker_only_burst_at_end(self, check_against_oracle):
        automaton = compile_regex("ab(x{})")
        got = check_against_oracle(automaton, "ab")
        assert got == {SpanTuple({"x": Span(3, 3)})}


class TestDecoding:
    def test_decode_configuration_word(self):
        w = VariableConfiguration.from_mapping
        word = [
            w({"x": WAITING}),
            w({"x": OPEN}),
            w({"x": CLOSED}),
        ]
        mu = decode_configuration_word(word, frozenset({"x"}))
        assert mu == SpanTuple({"x": Span(2, 3)})

    def test_decode_immediately_closed(self):
        w = VariableConfiguration.from_mapping
        word = [w({"x": CLOSED}), w({"x": CLOSED})]
        mu = decode_configuration_word(word, frozenset({"x"}))
        assert mu == SpanTuple({"x": Span(1, 1)})

    def test_decode_never_closed_rejected(self):
        w = VariableConfiguration.from_mapping
        with pytest.raises(ValueError):
            decode_configuration_word([w({"x": OPEN})], frozenset({"x"}))


class TestDelayInstrumentation:
    def test_measure_delays_counts(self):
        automaton = compile_regex("a*x{a*}a*")
        report = measure_delays(automaton, "aaa")
        assert report.count == 10
        assert report.preprocessing_seconds >= 0
        assert report.max_delay >= report.mean_delay >= 0
        assert not report.truncated

    def test_measure_delays_limit(self):
        automaton = compile_regex("a*x{a*}a*")
        report = measure_delays(automaton, "aaaa", limit=3)
        assert report.count == 3
        assert report.truncated

    def test_total_seconds(self):
        automaton = compile_regex("x{a}")
        report = measure_delays(automaton, "a")
        assert report.total_seconds >= report.preprocessing_seconds
