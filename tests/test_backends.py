"""The ComputeBackend contract, exercised per concrete backend.

``SpannerService`` is pure policy since PR 10; everything substrate-
specific — spawning, artifact shipment, dispatch, kill-and-replace —
lives behind :class:`~repro.runtime.backends.ComputeBackend`.  These
tests pin the parts of that contract the parity suites cannot see from
the outside:

* the compiled artifact is shipped **at most once per (worker, query)
  lifetime**, whatever the backend means by "ship" (pickled bytes over
  a queue for processes, a shared materialized engine for threads and
  the inline worker);
* a killed/crashed worker is replaced and the fleet converges with **no
  tuple lost and none duplicated**;
* backend selection: ``"auto"`` resolution, the resolved name in
  ``health()`` and the manifest, and restore onto the recorded
  substrate (with override).
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    BACKEND_NAMES,
    CompiledSpanner,
    FaultPlan,
    SpannerService,
    default_backend_name,
)
from repro.runtime.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)

from test_service import BACKENDS, DOCS, WORD_FORMULA, canonical


@pytest.fixture(scope="module")
def word_serial():
    return list(CompiledSpanner(WORD_FORMULA).evaluate_many(DOCS))


class TestResolution:
    def test_names_and_classes(self):
        assert BACKEND_NAMES == ("auto", "serial", "thread", "process")
        assert isinstance(resolve_backend("serial", workers=1), SerialBackend)
        assert isinstance(resolve_backend("thread", workers=2), ThreadBackend)
        assert isinstance(
            resolve_backend("process", workers=2), ProcessBackend
        )

    def test_auto_resolves_to_a_concrete_backend(self):
        assert default_backend_name() in ("thread", "process")
        backend = resolve_backend("auto", workers=2)
        assert backend.name == default_backend_name()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("fiber", workers=2)
        with pytest.raises(ValueError, match="backend"):
            SpannerService(workers=2, backend="fiber")

    def test_flags_per_backend(self):
        for name, model, kill, wire, inline in (
            ("serial", "inline", False, False, True),
            ("thread", "thread", True, False, False),
            ("process", "process", True, True, False),
        ):
            backend = resolve_backend(name, workers=2)
            assert backend.worker_model == model
            assert backend.supports_kill is kill
            assert backend.uses_wire_transport is wire
            assert backend.inline is inline


class TestArtifactShippedOnce:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_at_most_one_shipment_per_worker_lifetime(
        self, word_serial, backend
    ):
        """Many chunks, one query: the artifact payload rides along
        with at most one dispatched task per worker, whatever "payload"
        means on this substrate."""
        shipments: list[tuple[int, bool]] = []
        with SpannerService(
            workers=2, chunk_size=2, backend=backend
        ) as service:
            inner = service._backend
            original = inner.dispatch

            def spying_dispatch(worker, msg):
                shipments.append((worker.worker_id, msg[4] is not None))
                original(worker, msg)

            inner.dispatch = spying_dispatch
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            for _ in range(3):
                out = service.submit(DOCS, queries=qid).result(timeout=120)
                assert canonical(out) == canonical(word_serial)
        assert len(shipments) >= 3 * (len(DOCS) // 2)
        per_worker: dict[int, int] = {}
        for worker_id, shipped in shipments:
            if shipped:
                per_worker[worker_id] = per_worker.get(worker_id, 0) + 1
        # Every worker that got the artifact got it exactly once.
        assert per_worker and all(n == 1 for n in per_worker.values())

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_shared_backends_materialize_once(self, backend):
        """Thread and inline workers share one materialized engine per
        query — respawns and re-shipments reuse it by identity."""
        with SpannerService(
            workers=2, chunk_size=2, max_tasks_per_worker=1, backend=backend
        ) as service:
            inner = service._backend
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            service.submit(DOCS, queries=qid).result(timeout=120)
            assert service.workers_recycled > 0  # several worker lifetimes
            payload = service._registry[str(qid)]
            engine = inner.prepare_payload(str(qid), payload)
            assert inner.prepare_payload(str(qid), payload) is engine
            assert list(inner._engines) == [str(qid)]


class TestKillAndReplace:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_replaces_worker_no_loss_no_dup(self, word_serial, backend):
        """An injected worker death mid-batch: the fleet replaces the
        worker and the output is byte-identical — nothing lost to the
        crash, nothing duplicated by the re-dispatch."""
        plan = FaultPlan().crash(task=1, attempts=(1,))
        with SpannerService(
            workers=2, chunk_size=2, fault_plan=plan, backend=backend
        ) as service:
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            out = service.submit(DOCS, queries=qid).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
            assert service.workers_crashed >= 1
            health = service.health()
            assert health["backend"]["name"] == backend
            assert len(health["workers"]) == 2  # back at full strength
            # The replaced fleet still serves.
            again = service.submit(DOCS, queries=qid).result(timeout=120)
            assert canonical(again) == canonical(word_serial)

    def test_serial_backend_refuses_kill(self):
        backend = resolve_backend("serial", workers=1)
        worker = backend.spawn_worker()
        with pytest.raises(AssertionError):
            backend.kill_worker(worker)


class TestManifestBackend:
    def test_manifest_records_resolved_backend_and_restores(
        self, tmp_path, word_serial
    ):
        import json

        manifest = str(tmp_path / "manifest.json")
        with SpannerService(
            workers=1, backend="auto", manifest_path=manifest
        ) as service:
            assert service.backend == default_backend_name()  # resolved
            qid = str(service.register(CompiledSpanner(WORD_FORMULA)))
            service.submit(DOCS, queries=qid).result(timeout=120)
        doc = json.loads(open(manifest).read())
        assert doc["format"] == 2
        assert doc["config"]["backend"] == default_backend_name()

        revived = SpannerService.restore(manifest)
        try:
            assert revived.backend == default_backend_name()
            out = revived.submit(DOCS, queries=qid).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
        finally:
            revived.close()

        overridden = SpannerService.restore(manifest, backend="serial")
        try:
            assert overridden.backend == "serial"
            out = overridden.submit(DOCS, queries=qid).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
        finally:
            overridden.close()

    def test_v1_manifest_read_as_process_backend(self, tmp_path):
        """Migration: pre-PR-10 manifests carry no backend; they are
        restored onto the process fleet (the only substrate that
        existed when they were written) — overridable as usual."""
        import json

        manifest = str(tmp_path / "manifest.json")
        with SpannerService(
            workers=1, backend="serial", manifest_path=manifest
        ) as service:
            service.register(CompiledSpanner(WORD_FORMULA))
        doc = json.loads(open(manifest).read())
        doc["format"] = 1
        doc["config"].pop("backend")
        open(manifest, "w").write(json.dumps(doc))

        revived = SpannerService.restore(manifest)
        try:
            assert revived.backend == "process"
        finally:
            revived.close()
        overridden = SpannerService.restore(manifest, backend="thread")
        try:
            assert overridden.backend == "thread"
        finally:
            overridden.close()
