"""Unit tests for spans, span tuples and span relations (§2.1)."""

import pytest

from repro.errors import InvalidSpanError, SchemaError
from repro.spans import EMPTY_TUPLE, Span, SpanRelation, SpanTuple


class TestSpan:
    def test_paper_example_2_1_substrings(self):
        s = "chocolate cookie"
        assert len(s) == 16
        assert Span(4, 6).extract(s) == "co"
        assert Span(11, 13).extract(s) == "co"
        # equal substrings, different spans
        assert Span(4, 6) != Span(11, 13)

    def test_paper_example_2_1_empty_spans(self):
        s = "chocolate cookie"
        assert Span(1, 1).extract(s) == ""
        assert Span(2, 2).extract(s) == ""
        assert Span(1, 1) != Span(2, 2)

    def test_whole_string_span(self):
        s = "chocolate cookie"
        assert Span.whole(s) == Span(1, 17)
        assert Span.whole(s).extract(s) == s

    def test_invalid_start(self):
        with pytest.raises(InvalidSpanError):
            Span(0, 1)

    def test_invalid_order(self):
        with pytest.raises(InvalidSpanError):
            Span(3, 2)

    def test_extract_out_of_range(self):
        with pytest.raises(InvalidSpanError):
            Span(1, 9).extract("abc")

    def test_length(self):
        assert len(Span(2, 5)) == 3
        assert len(Span(4, 4)) == 0
        assert Span(4, 4).is_empty()

    def test_contains(self):
        assert Span(1, 10).contains(Span(3, 5))
        assert Span(1, 10).contains(Span(1, 10))
        assert not Span(3, 5).contains(Span(1, 10))
        assert not Span(3, 5).contains(Span(4, 7))

    def test_overlaps(self):
        assert Span(1, 5).overlaps(Span(4, 8))
        assert not Span(1, 4).overlaps(Span(4, 8))
        assert not Span(2, 2).overlaps(Span(1, 5))  # empty span overlaps nothing

    def test_precedes(self):
        assert Span(1, 4).precedes(Span(4, 8))
        assert not Span(1, 5).precedes(Span(4, 8))

    def test_slice_round_trip(self):
        span = Span.from_slice(3, 7)
        assert span == Span(4, 8)
        assert span.to_slice() == (3, 7)

    def test_all_spans_count(self):
        # N=3 has (N+1)(N+2)/2 = 10 spans.
        assert len(list(Span.all_spans("abc"))) == 10

    def test_all_spans_sorted(self):
        spans = list(Span.all_spans("ab"))
        assert spans == sorted(spans)

    def test_ordering(self):
        assert Span(1, 2) < Span(1, 3) < Span(2, 2)

    def test_str(self):
        assert str(Span(2, 5)) == "[2, 5>"

    def test_fits(self):
        assert Span(1, 4).fits("abc")
        assert not Span(1, 5).fits("abc")


class TestSpanTuple:
    def test_mapping_protocol(self):
        t = SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})
        assert t["x"] == Span(1, 2)
        assert set(t) == {"x", "y"}
        assert len(t) == 2

    def test_unknown_variable(self):
        t = SpanTuple({"x": Span(1, 2)})
        with pytest.raises(KeyError):
            t["z"]

    def test_equality_and_hash(self):
        a = SpanTuple({"x": Span(1, 2)})
        b = SpanTuple({"x": Span(1, 2)})
        assert a == b
        assert hash(a) == hash(b)
        assert a != SpanTuple({"x": Span(1, 3)})

    def test_equality_against_plain_mapping(self):
        assert SpanTuple({"x": Span(1, 2)}) == {"x": Span(1, 2)}

    def test_restrict(self):
        t = SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})
        assert t.restrict(["x"]) == SpanTuple({"x": Span(1, 2)})

    def test_restrict_unknown(self):
        t = SpanTuple({"x": Span(1, 2)})
        with pytest.raises(SchemaError):
            t.restrict(["nope"])

    def test_compatible_and_merge(self):
        a = SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})
        b = SpanTuple({"y": Span(2, 3), "z": Span(1, 1)})
        assert a.compatible(b)
        merged = a.merge(b)
        assert merged.variables == {"x", "y", "z"}

    def test_incompatible_merge(self):
        a = SpanTuple({"x": Span(1, 2)})
        b = SpanTuple({"x": Span(1, 3)})
        assert not a.compatible(b)
        with pytest.raises(SchemaError):
            a.merge(b)

    def test_strings(self):
        t = SpanTuple({"x": Span(1, 3)})
        assert t.strings("abc") == {"x": "ab"}

    def test_rejects_non_span(self):
        with pytest.raises(TypeError):
            SpanTuple({"x": (1, 2)})

    def test_empty_tuple_constant(self):
        assert len(EMPTY_TUPLE) == 0
        assert EMPTY_TUPLE.variables == frozenset()


class TestSpanRelation:
    def _rel(self, *pairs):
        return SpanRelation(
            ["x"], [SpanTuple({"x": Span(i, j)}) for i, j in pairs]
        )

    def test_schema_enforced(self):
        with pytest.raises(SchemaError):
            SpanRelation(["x"], [SpanTuple({"y": Span(1, 1)})])

    def test_boolean_semantics(self):
        false = SpanRelation([], [])
        true = SpanRelation([], [EMPTY_TUPLE])
        assert false.is_boolean and true.is_boolean
        assert not false
        assert true

    def test_project(self):
        rel = SpanRelation(
            ["x", "y"],
            [SpanTuple({"x": Span(1, 2), "y": Span(i, i)}) for i in (1, 2, 3)],
        )
        projected = rel.project(["x"])
        assert projected.variables == {"x"}
        assert len(projected) == 1  # duplicates collapse

    def test_project_unknown(self):
        with pytest.raises(SchemaError):
            self._rel((1, 1)).project(["q"])

    def test_union(self):
        a = self._rel((1, 1), (1, 2))
        b = self._rel((1, 2), (2, 2))
        assert len(a.union(b)) == 3

    def test_union_schema_mismatch(self):
        with pytest.raises(SchemaError):
            self._rel((1, 1)).union(SpanRelation(["y"]))

    def test_natural_join_shared(self):
        a = SpanRelation(
            ["x", "y"], [SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})]
        )
        b = SpanRelation(
            ["y", "z"],
            [
                SpanTuple({"y": Span(2, 3), "z": Span(1, 1)}),
                SpanTuple({"y": Span(1, 3), "z": Span(1, 1)}),
            ],
        )
        joined = a.natural_join(b)
        assert len(joined) == 1
        assert joined.variables == {"x", "y", "z"}

    def test_natural_join_disjoint_is_product(self):
        a = self._rel((1, 1), (2, 2))
        b = SpanRelation(["y"], [SpanTuple({"y": Span(1, 2)})])
        assert len(a.natural_join(b)) == 2

    def test_select_string_equality(self):
        s = "abab"
        rel = SpanRelation(
            ["x", "y"],
            [
                SpanTuple({"x": Span(1, 3), "y": Span(3, 5)}),  # ab == ab
                SpanTuple({"x": Span(1, 3), "y": Span(2, 4)}),  # ab != ba
            ],
        )
        kept = rel.select_string_equality(s, ["x", "y"])
        assert len(kept) == 1

    def test_select_string_equality_single_var_noop(self):
        rel = self._rel((1, 1))
        assert rel.select_string_equality("a", ["x"]) == rel

    def test_difference(self):
        a = self._rel((1, 1), (1, 2))
        b = self._rel((1, 2))
        assert len(a.difference(b)) == 1

    def test_sorted_deterministic(self):
        rel = self._rel((2, 2), (1, 1), (1, 2))
        assert rel.sorted() == sorted(rel.sorted())
