"""Pickle round-trips for the automaton layer's serializable contract.

``ParallelSpanner`` ships one ``AutomatonTables`` artifact to every
worker process, which makes picklability a semantic contract, not a
convenience: the label singletons must keep their identity (epsilon
checks are ``is`` checks), per-process salted hashes must be recomputed
(``VariableConfiguration`` memoizes its hash), interned closure tuples
must stay interned, and the reconstructed tables must drive the
evaluator to **identical tuple sequences** — the same radix order, on
every input.
"""

from __future__ import annotations

import pickle

import pytest

from repro.alphabet import EPSILON, VariableMarker
from repro.enumeration import SpannerEvaluator
from repro.runtime import AutomatonTables, CompiledSpanner
from repro.spans import Span, SpanTuple
from repro.vset import compile_regex, equality_automaton, join
from repro.vset.configurations import OPEN, WAITING, VariableConfiguration


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def tuple_sequence(tables: AutomatonTables, s: str) -> list[SpanTuple]:
    return list(SpannerEvaluator(tables.automaton, s, tables=tables))


class TestLabelPickling:
    def test_epsilon_keeps_singleton_identity(self):
        assert roundtrip(EPSILON) is EPSILON
        # ... also nested inside containers (the NFA stores it in lists).
        assert roundtrip([EPSILON, EPSILON])[0] is EPSILON

    def test_markers_and_spans_round_trip(self):
        marker = VariableMarker("x", True)
        assert roundtrip(marker) == marker
        assert roundtrip(Span(2, 5)) == Span(2, 5)

    def test_configuration_hash_is_recomputed(self):
        config = VariableConfiguration(("x", "y"), (WAITING, OPEN))
        restored = roundtrip(config)
        assert restored == config
        # The memoized hash must match a freshly computed one — string
        # hashes are process-salted, so shipping the parent's hash
        # would break every dict keyed by configurations in a worker.
        assert hash(restored) == hash(
            VariableConfiguration(("x", "y"), (WAITING, OPEN))
        )
        assert restored._hash == hash((restored.variables, restored.states))


class TestAutomatonTablesRoundTrip:
    DOCS = ("say hi ho", "a1bc2", "", "UPPER lower", "zzz", "ab cd ab")

    def assert_identical_sequences(self, tables: AutomatonTables):
        restored = roundtrip(tables)
        for s in self.DOCS:
            assert tuple_sequence(restored, s) == tuple_sequence(tables, s)

    def test_predicate_labelled_automaton(self):
        automaton = compile_regex("(ε|.*[^a-z])x{[a-z]+}([^a-z].*|ε)")
        self.assert_identical_sequences(AutomatonTables(automaton, compact=True))

    def test_joined_product_with_marker_sets(self):
        joined = join(compile_regex(".*x{a+}.*"), compile_regex(".*y{b+}.*"))
        tables = AutomatonTables(joined, compact=True)
        restored = roundtrip(tables)
        for s in ("abab", "aabb", "ba", "aaa"):
            assert tuple_sequence(restored, s) == tuple_sequence(tables, s)

    def test_equality_query_operand(self):
        # The per-string A_eq joined into a static operand — the
        # Theorem 5.4 shape.  Only meaningful on the string it was
        # built for, which is exactly what a worker would receive.
        s = "abcabc"
        static = compile_regex(".*x{[a-z]+}.*y{[a-z]+}.*")
        product = join(static, equality_automaton(s, ("x", "y")))
        tables = AutomatonTables(product, compact=True)
        restored = roundtrip(tables)
        before = tuple_sequence(tables, s)
        assert before  # non-degenerate: the equality has witnesses
        assert tuple_sequence(restored, s) == before

    def test_empty_language_tables(self):
        empty = compile_regex("∅", require_functional=False)
        from repro.vset import VSetAutomaton

        tables = AutomatonTables(VSetAutomaton(empty.nfa, set()), compact=True)
        restored = roundtrip(tables)
        assert restored.is_empty
        assert tuple_sequence(restored, "abc") == []

    def test_object_sharing_survives_via_pickle_memo(self):
        # ``initial_ve`` aliases ``ve[initial]`` and ``final_config``
        # aliases ``configs[final]``; pickle's memo must preserve that
        # aliasing (one object shipped once), not duplicate it — the
        # same mechanism that keeps interned closure tuples interned.
        automaton = compile_regex("(ε|.* )x{[a-z]+}@y{[a-z]+}( .*|ε)")
        tables = AutomatonTables(automaton, compact=True)
        prepared = tables.automaton
        assert tables.initial_ve is tables.ve[prepared.initial]
        restored = roundtrip(tables)
        assert restored.initial_ve is restored.ve[restored.automaton.initial]
        assert restored.final_config is restored.configs[restored.automaton.final]

    def test_burst_rows_survive(self):
        spanner = CompiledSpanner(".*x{[ab]+}.*")
        list(spanner.stream("ab!?"))  # two lazy rows beyond the probe
        rows = spanner.tables.distinct_characters_seen
        restored = roundtrip(spanner.tables)
        assert restored.distinct_characters_seen == rows
        assert restored.burst_step("a") == spanner.tables.burst_step("a")
        assert restored.burst_step("!") == spanner.tables.burst_step("!")

    def test_prebuilt_burst_survives(self):
        spanner = CompiledSpanner("(a|b)*x{a+}(a|b)*")
        assert spanner.tables.burst_complete
        restored = roundtrip(spanner.tables)
        assert restored.burst_complete
        # Unseen characters short-circuit to the rebuilt empty row.
        assert restored.burst_step("z") == ((),) * len(restored.terminal_edges)

    def test_views_are_dropped(self):
        a1 = compile_regex(".*x{a+}.*")
        a2 = compile_regex(".*y{b+}.*")
        join(a1, a2)  # populates the operand view on a1's shared tables
        from repro.runtime.tables import tables_for

        tables = tables_for(a1)
        assert tables.views  # scratch state exists...
        assert roundtrip(tables).views == {}  # ...and is not shipped


class TestCompiledSpannerRoundTrip:
    def test_spanner_round_trip(self):
        spanner = CompiledSpanner("a*x{a*}a*")
        restored = roundtrip(spanner)
        for s in ("", "a", "aaa"):
            assert list(restored.stream(s)) == list(spanner.stream(s))
        assert restored.count("aa") == 6

    def test_from_tables_does_not_reprocess(self):
        spanner = CompiledSpanner(".*x{[0-9]+}.*")
        restored_tables = roundtrip(spanner.tables)
        rebuilt = CompiledSpanner.from_tables(restored_tables)
        assert rebuilt.tables is restored_tables
        assert rebuilt.automaton is restored_tables.automaton
        assert list(rebuilt.stream("a1b22")) == list(spanner.stream("a1b22"))

    def test_non_functional_tables_rejected_on_rebuild(self):
        from repro.errors import NotFunctionalError
        from repro.alphabet import open_marker
        from repro.automata.nfa import NFA
        from repro.vset import VSetAutomaton

        nfa = NFA()
        a, b = nfa.add_state(), nfa.add_state()
        nfa.set_initial(a)
        nfa.add_final(b)
        nfa.add_transition(a, open_marker("x"), b)
        tables = AutomatonTables(VSetAutomaton(nfa, {"x"}), compact=True)
        with pytest.raises(NotFunctionalError):
            CompiledSpanner.from_tables(roundtrip(tables))
