"""Tests for the multi-metric perf-trajectory gate.

The gate reads committed ``BENCH_*.json`` records and must (a) catch a
>threshold regression in any watched metric — E13 docs/sec dropping,
E10d fused timings rising, peak RSS rising — in that metric's bad
direction, and (b) **never** crash or fail on records that predate a
metric: old layouts are simply not comparable.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.check_regression import (
    check,
    default_gates,
    load_records,
    main,
    rss_metric,
    table_metric,
    table_total,
)


def make_record(
    *,
    docs_per_sec: float | None = 1000.0,
    fused_s: float | None = 0.05,
    rss_kb: int | None = 50_000,
    rss_children_kb: int | None = 20_000,
    fleet_counters: tuple[int, int] | None = None,
    resource_counters: tuple[int, int] | None = None,
    store_counters: tuple[int, int, int] | None = None,
    backend_rows: list[tuple[str, int, float]] | None = None,
    unix_time: float = 0.0,
) -> dict:
    """A BENCH_*.json payload shaped like the harness writes it.

    ``fleet_counters=(timeouts, quarantines)`` adds an E13g table with
    those counter totals; ``resource_counters=(degraded, truncated)``
    adds an E13h table the same way; ``store_counters=(hits, corrupt,
    orphans)`` an E13i table; ``backend_rows=[(backend, workers,
    docs_per_s), ...]`` an E13k table; ``None`` (the default) models a
    record from before the respective work, with no such table at all.
    """
    experiments = []
    if fused_s is not None:
        experiments.append(
            {
                "experiment": "E10",
                "peak_rss_kb": rss_kb,
                "peak_rss_children_kb": rss_children_kb,
                "tables": [
                    {
                        "title": "E10d  fused equality join vs materialized",
                        "headers": ["N", "materialized (s)", "fused (s)"],
                        "rows": [
                            [20, 0.4, fused_s],
                            [40, 1.1, fused_s * 1.5],
                            [80, 4.0, fused_s * 2.0],
                        ],
                    }
                ],
            }
        )
    if docs_per_sec is not None:
        tables = [
            {
                "title": "E13a  docs/sec over log lines",
                "headers": ["docs", "compiled docs/s"],
                "rows": [
                    [50, docs_per_sec * 0.9],
                    [100, docs_per_sec],
                    [200, docs_per_sec * 1.1],
                ],
            }
        ]
        if fleet_counters is not None:
            timeouts, quarantines = fleet_counters
            tables.append(
                {
                    "title": "E13g  deadline + heartbeat overhead",
                    "headers": [
                        "docs", "off (s)", "on (s)", "overhead %",
                        "timeouts", "quarantines",
                    ],
                    "rows": [
                        [800, 0.45, 0.46, 1.8, timeouts, quarantines],
                        [1600, 0.91, 0.92, 1.2, 0, 0],
                    ],
                }
            )
        if resource_counters is not None:
            degraded, truncated = resource_counters
            tables.append(
                {
                    "title": "E13h  resource-governance overhead",
                    "headers": [
                        "docs", "off (s)", "on (s)", "overhead %",
                        "degraded", "truncated",
                    ],
                    "rows": [
                        [800, 0.45, 0.45, 0.4, degraded, truncated],
                        [1600, 0.91, 0.91, 0.3, 0, 0],
                    ],
                }
            )
        if store_counters is not None:
            hits, corrupt, orphans = store_counters
            tables.append(
                {
                    "title": "E13i  durable artifact store (FileStore)",
                    "headers": [
                        "source", "cold (s)", "warm (s)", "speedup",
                        "hits", "corrupt", "orphans",
                    ],
                    "rows": [
                        ["dictionary", 0.011, 0.002, 4.8,
                         hits, corrupt, orphans],
                        ["capitalized", 0.004, 0.001, 4.6, 1, 0, 0],
                    ],
                }
            )
        if backend_rows is not None:
            tables.append(
                {
                    "title": "E13k  backend comparison (ParallelSpanner "
                    "over the E13a log corpus)",
                    "headers": [
                        "backend", "workers", "docs", "wall (s)",
                        "docs/s", "vs bare serial",
                    ],
                    "rows": [
                        [backend, workers, 800, 800 / dps, dps, 1.0]
                        for backend, workers, dps in backend_rows
                    ],
                }
            )
        experiments.append(
            {
                "experiment": "E13",
                "peak_rss_kb": rss_kb,
                "peak_rss_children_kb": rss_children_kb,
                "tables": tables,
            }
        )
    return {"unix_time": unix_time, "experiments": experiments}


def write_history(tmp_path, records):
    for i, record in enumerate(records):
        record["unix_time"] = float(i)
        path = tmp_path / f"BENCH_{i:04d}.json"
        path.write_text(json.dumps(record), encoding="utf-8")
    return tmp_path


class TestMetricExtraction:
    def test_table_metric_median_over_rows(self):
        record = make_record(docs_per_sec=1000.0)
        assert table_metric(record, "E13", "E13a", "compiled docs/s") == 1000.0

    def test_table_metric_missing_layers_return_none(self):
        record = make_record(docs_per_sec=None, fused_s=None)
        assert table_metric(record, "E13", "E13a", "compiled docs/s") is None
        record = make_record()
        assert table_metric(record, "E13", "E13z", "compiled docs/s") is None
        assert table_metric(record, "E13", "E13a", "no-such-column") is None

    def test_rss_metric_max_over_experiments(self):
        record = make_record(rss_kb=50_000)
        assert rss_metric(record, "peak_rss_kb") == 50_000

    def test_rss_metric_tolerates_missing_and_null(self):
        record = make_record()
        for exp in record["experiments"]:
            exp.pop("peak_rss_kb")
            exp["peak_rss_children_kb"] = None  # non-POSIX runner
        assert rss_metric(record, "peak_rss_kb") is None
        assert rss_metric(record, "peak_rss_children_kb") is None


class TestGateVerdicts:
    def test_steady_trajectory_passes(self, tmp_path):
        write_history(tmp_path, [make_record() for _ in range(4)])
        assert check(tmp_path) == 0

    def test_docs_per_sec_drop_fails(self, tmp_path):
        write_history(
            tmp_path,
            [make_record() for _ in range(3)]
            + [make_record(docs_per_sec=500.0)],  # -50%
        )
        assert check(tmp_path) == 1

    def test_fused_seconds_rise_fails(self, tmp_path):
        write_history(
            tmp_path,
            [make_record() for _ in range(3)]
            + [make_record(fused_s=0.09)],  # +80%
        )
        assert check(tmp_path) == 1

    def test_peak_rss_rise_fails(self, tmp_path):
        write_history(
            tmp_path,
            [make_record() for _ in range(3)]
            + [make_record(rss_kb=80_000)],  # +60%
        )
        assert check(tmp_path) == 1

    def test_children_rss_rise_fails(self, tmp_path):
        write_history(
            tmp_path,
            [make_record() for _ in range(3)]
            + [make_record(rss_children_kb=40_000)],  # +100%
        )
        assert check(tmp_path) == 1

    def test_within_threshold_wobble_passes(self, tmp_path):
        write_history(
            tmp_path,
            [make_record() for _ in range(3)]
            + [
                make_record(
                    docs_per_sec=850.0,  # -15%
                    fused_s=0.06,  # +20%
                    rss_kb=60_000,  # +20%
                )
            ],
        )
        assert check(tmp_path) == 0

    def test_improvement_passes(self, tmp_path):
        write_history(
            tmp_path,
            [make_record() for _ in range(3)]
            + [make_record(docs_per_sec=5000.0, fused_s=0.01, rss_kb=10_000)],
        )
        assert check(tmp_path) == 0


class TestOldRecordTolerance:
    """Old BENCH files must never crash (or fail) the gate."""

    def test_single_record_passes_trivially(self, tmp_path):
        write_history(tmp_path, [make_record()])
        assert check(tmp_path) == 0

    def test_baseline_predating_e10_and_rss_is_skipped(self, tmp_path):
        # PR 2-era records: E13 only, no RSS fields at all.
        old = make_record(fused_s=None)
        for exp in old["experiments"]:
            exp.pop("peak_rss_kb")
            exp.pop("peak_rss_children_kb")
        write_history(tmp_path, [old, old.copy(), make_record()])
        assert check(tmp_path) == 0

    def test_newest_record_missing_newer_metric_is_skipped(self, tmp_path):
        # The newest run recorded E13 but not E10: the fused gate skips
        # rather than erroring, and the E13 gate still binds.
        write_history(
            tmp_path,
            [make_record() for _ in range(3)] + [make_record(fused_s=None)],
        )
        assert check(tmp_path) == 0
        write_history(
            tmp_path,
            [make_record() for _ in range(3)]
            + [make_record(fused_s=None, docs_per_sec=100.0)],
        )
        assert check(tmp_path) == 1  # still catches the E13 drop

    def test_newest_record_missing_required_metric_errors(self, tmp_path):
        # The E13 gate is *required*: the newest record lacking it means
        # the table/column was renamed or the experiment dropped — a
        # configuration error, not a silent skip.
        write_history(
            tmp_path,
            [make_record() for _ in range(3)]
            + [make_record(docs_per_sec=None)],
        )
        assert check(tmp_path) == 2

    def test_rss_baseline_resets_when_experiment_set_changes(self, tmp_path):
        # Baselines that ran E13 only; the newest run added E10, which
        # legitimately raises the process-lifetime RSS high-water mark.
        # The RSS gates must treat the old records as not comparable
        # (baseline reset) instead of flagging a regression.
        old = make_record(fused_s=None)  # E13 only
        new = make_record(rss_kb=200_000)  # E10 + E13, much higher RSS
        write_history(tmp_path, [old, dict(old), dict(old), new])
        assert check(tmp_path) == 0
        # Same experiment set on both sides: the rise is a regression.
        write_history(
            tmp_path,
            [make_record() for _ in range(3)]
            + [make_record(rss_kb=200_000)],
        )
        assert check(tmp_path) == 1

    def test_unreadable_record_is_skipped(self, tmp_path):
        write_history(tmp_path, [make_record() for _ in range(3)])
        (tmp_path / "BENCH_junk.json").write_text("{not json", encoding="utf-8")
        assert check(tmp_path) == 0

    def test_records_ordered_by_unix_time(self, tmp_path):
        # Regression written with an *early* filename but the latest
        # timestamp: the chronological ordering must spot it as newest.
        good = make_record()
        bad = make_record(docs_per_sec=100.0)
        (tmp_path / "BENCH_0zzz.json").write_text(
            json.dumps({**good, "unix_time": 1.0}), encoding="utf-8"
        )
        (tmp_path / "BENCH_1zzz.json").write_text(
            json.dumps({**good, "unix_time": 2.0}), encoding="utf-8"
        )
        (tmp_path / "BENCH_0aaa.json").write_text(
            json.dumps({**bad, "unix_time": 3.0}), encoding="utf-8"
        )
        names = [name for name, _payload in load_records(tmp_path)]
        assert names[-1] == "BENCH_0aaa.json"
        assert check(tmp_path) == 1


class TestFleetCounters:
    """The informational timeouts/quarantines report (PR 6 E13g)."""

    def test_table_total_sums_counter_rows(self):
        record = make_record(fleet_counters=(2, 1))
        assert table_total(record, "E13", "E13g", "timeouts") == 2
        assert table_total(record, "E13", "E13g", "quarantines") == 1
        assert table_total(record, "E13", "E13g", "no-such") is None
        assert table_total(make_record(), "E13", "E13g", "timeouts") is None

    def test_clean_counters_reported_without_notice(self, tmp_path, capsys):
        write_history(
            tmp_path,
            [make_record(), make_record(fleet_counters=(0, 0))],
        )
        assert check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "fleet-counters" in out
        assert "timeouts=0, quarantines=0" in out
        assert "notice" not in out

    def test_nonzero_counters_warn_but_do_not_fail(self, tmp_path, capsys):
        # A benchmark run where deadlines tripped: suspicious timings,
        # but an informational notice — never an exit-code failure.
        write_history(
            tmp_path,
            [make_record() for _ in range(3)]
            + [make_record(fleet_counters=(3, 1))],
        )
        assert check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "timeouts=3, quarantines=1" in out
        assert "notice: nonzero fault counters" in out

    def test_records_predating_e13g_stay_silent(self, tmp_path, capsys):
        write_history(tmp_path, [make_record() for _ in range(3)])
        assert check(tmp_path) == 0
        assert "fleet-counters" not in capsys.readouterr().out


class TestResourceCounters:
    """The informational degraded/truncated report (PR 7 E13h)."""

    def test_table_total_sums_counter_rows(self):
        record = make_record(resource_counters=(3, 2))
        assert table_total(record, "E13", "E13h", "degraded") == 3
        assert table_total(record, "E13", "E13h", "truncated") == 2
        assert table_total(make_record(), "E13", "E13h", "degraded") is None

    def test_clean_counters_reported_without_notice(self, tmp_path, capsys):
        write_history(
            tmp_path,
            [make_record(), make_record(resource_counters=(0, 0))],
        )
        assert check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "resource-counters" in out
        assert "degraded=0, truncated=0" in out
        assert "notice" not in out

    def test_nonzero_counters_warn_but_do_not_fail(self, tmp_path, capsys):
        # A benchmark run where a limit tripped: the governed timings
        # include pipe fallbacks or truncations — an informational
        # notice, never an exit-code failure.
        write_history(
            tmp_path,
            [make_record() for _ in range(3)]
            + [make_record(resource_counters=(4, 2))],
        )
        assert check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "degraded=4, truncated=2" in out
        assert "notice: nonzero governance counters" in out

    def test_records_predating_e13h_stay_silent(self, tmp_path, capsys):
        write_history(
            tmp_path,
            [make_record(fleet_counters=(0, 0)) for _ in range(3)],
        )
        assert check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "resource-counters" not in out
        assert "fleet-counters" in out  # the older report still prints


class TestStoreCounters:
    """The informational hits/corrupt/orphans report (PR 8 E13i)."""

    def test_table_total_sums_counter_rows(self):
        record = make_record(store_counters=(1, 2, 3))
        assert table_total(record, "E13", "E13i", "hits") == 2  # 1 + 1
        assert table_total(record, "E13", "E13i", "corrupt") == 2
        assert table_total(record, "E13", "E13i", "orphans") == 3
        assert table_total(make_record(), "E13", "E13i", "hits") is None

    def test_clean_counters_reported_without_notice(self, tmp_path, capsys):
        write_history(
            tmp_path,
            [make_record(), make_record(store_counters=(1, 0, 0))],
        )
        assert check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "store-counters" in out
        assert "hits=2, corrupt=0, orphans=0" in out
        assert "notice" not in out

    def test_recovery_counters_warn_but_do_not_fail(self, tmp_path, capsys):
        # A run that revived a corrupt entry or swept crash leftovers:
        # its warm-register timings include recovery work — a
        # data-quality notice, never an exit-code failure.
        write_history(
            tmp_path,
            [make_record() for _ in range(3)]
            + [make_record(store_counters=(1, 1, 2))],
        )
        assert check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "hits=2, corrupt=1, orphans=2" in out
        assert "notice: nonzero store recovery counters" in out

    def test_records_predating_e13i_stay_silent(self, tmp_path, capsys):
        write_history(
            tmp_path,
            [make_record(resource_counters=(0, 0)) for _ in range(3)],
        )
        assert check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "store-counters" not in out
        assert "resource-counters" in out  # the older report still prints


class TestBackendComparison:
    """The informational E13k backend head-to-head report (PR 10)."""

    def test_newest_record_rows_reported(self, tmp_path, capsys):
        write_history(
            tmp_path,
            [make_record()]
            + [
                make_record(
                    backend_rows=[
                        ("serial", 1, 1800.0),
                        ("thread", 4, 1500.0),
                        ("process", 4, 3600.0),
                    ]
                )
            ],
        )
        assert check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "backend-comparison" in out
        assert "serial@1w=1800 docs/s" in out
        assert "process@4w=3600 docs/s" in out

    def test_records_predating_e13k_stay_silent(self, tmp_path, capsys):
        write_history(
            tmp_path,
            [make_record(store_counters=(1, 0, 0)) for _ in range(3)],
        )
        assert check(tmp_path) == 0
        out = capsys.readouterr().out
        assert "backend-comparison" not in out
        assert "store-counters" in out  # the older report still prints


class TestCli:
    def test_missing_dir_skips_cleanly(self, tmp_path, capsys):
        # A freshly reset trajectory has no results dir (or an empty
        # one) on its first post-reset run: the gate must skip with a
        # clear message, not crash the perf-trajectory job.
        assert main(["--results-dir", str(tmp_path / "nope")]) == 0
        assert "gate skipped" in capsys.readouterr().out

    def test_empty_dir_skips_cleanly(self, tmp_path, capsys):
        assert main(["--results-dir", str(tmp_path)]) == 0
        assert "gate skipped" in capsys.readouterr().out

    def test_custom_single_gate(self, tmp_path):
        write_history(
            tmp_path,
            [make_record() for _ in range(3)] + [make_record(fused_s=0.09)],
        )
        # Custom gate watching only E13 (higher-is-better): passes even
        # though the default E10d gate would fail this history.
        assert (
            main(
                [
                    "--results-dir", str(tmp_path),
                    "--experiment", "E13",
                    "--table-prefix", "E13a",
                    "--column", "compiled docs/s",
                ]
            )
            == 0
        )
        # The same history under the default gates fails.
        assert main(["--results-dir", str(tmp_path)]) == 1

    def test_partial_custom_gate_flags_rejected(self, tmp_path):
        write_history(tmp_path, [make_record(), make_record()])
        with pytest.raises(SystemExit):
            main(["--results-dir", str(tmp_path), "--experiment", "E13"])

    def test_default_gate_count(self):
        assert [g.name for g in default_gates()] == [
            "e13-docs-per-sec",
            "e10d-fused-seconds",
            "e13j-fused-speedup",
            "peak-rss-kib",
            "peak-rss-children-kib",
        ]
