"""Tests for the functionality checks (Theorems 2.4 and 2.7)."""

import pytest

from repro.alphabet import EPSILON, char_pred, close_marker, open_marker
from repro.automata.nfa import NFA
from repro.errors import NotFunctionalError
from repro.regex import check_functional, is_functional, parse
from repro.vset import (
    VSetAutomaton,
    check_vset_functional,
    compile_regex,
    is_vset_functional,
)


class TestRegexFunctionality:
    @pytest.mark.parametrize(
        "source",
        [
            "a*x{a*}a*",
            ".*(x{foo}.*y{bar}|y{bar}.*x{foo}).*",
            ".* xmail{xuser{[a-z]*}@xdomain{[a-z]*\\.[a-z]*}} .*",
            "x{a}y{b}",
            "x{y{}}az{}",  # the Theorem 3.1 assignment shape
            "ε",
            "∅",
            "a*",
        ],
    )
    def test_functional_positive(self, source):
        assert is_functional(parse(source))

    def test_paper_nonfunctional_double_binding(self):
        report = check_functional(parse("x{a}x{a}"))
        assert not report.functional
        assert "both sides" in report.reason

    def test_paper_nonfunctional_union(self):
        report = check_functional(parse("x{a}|y{a}"))
        assert not report.functional
        assert "different variables" in report.reason

    def test_capture_under_star(self):
        report = check_functional(parse("(x{a})*"))
        assert not report.functional
        assert "'*'" in report.reason

    def test_capture_under_plus(self):
        assert not is_functional(parse("(x{a})+"))

    def test_capture_under_optional(self):
        assert not is_functional(parse("(x{a})?"))

    def test_rebinding_inside_capture(self):
        report = check_functional(parse("x{x{a}}"))
        assert not report.functional
        assert "re-bound" in report.reason

    def test_empty_branch_is_exempt(self):
        # The ∅ branch generates no ref-words, so differing variable
        # sets across the union are fine.
        assert is_functional(parse("x{a}|∅"))
        assert is_functional(parse("∅|x{a}"))

    def test_concat_with_empty_set_is_vacuous(self):
        assert is_functional(parse("x{a}x{b}∅"))
        report = check_functional(parse("x{a}x{b}∅"))
        assert report.language_empty

    def test_star_of_empty_set(self):
        # ∅* matches ε; no variables involved.
        report = check_functional(parse("(∅)*"))
        assert report.functional
        assert not report.language_empty

    def test_plus_of_empty_set_is_empty(self):
        report = check_functional(parse("(∅)+"))
        assert report.functional
        assert report.language_empty

    def test_report_variables(self):
        report = check_functional(parse("x{a}y{b}"))
        assert report.variables == {"x", "y"}


def _example_2_6_nonfunctional() -> VSetAutomaton:
    """The paper's Example 2.6 automaton A: one state, three loops."""
    nfa = NFA()
    q0 = nfa.add_state()
    nfa.set_initial(q0)
    nfa.add_final(q0)
    nfa.add_transition(q0, open_marker("x"), q0)
    nfa.add_transition(q0, char_pred("a"), q0)
    nfa.add_transition(q0, close_marker("x"), q0)
    return VSetAutomaton(nfa, {"x"})


def _example_2_6_functional() -> VSetAutomaton:
    """The paper's Example 2.6 automaton A_fun: a 3-state chain."""
    nfa = NFA()
    q0, q1, q2 = nfa.add_state(), nfa.add_state(), nfa.add_state()
    nfa.set_initial(q0)
    nfa.add_final(q2)
    nfa.add_transition(q0, char_pred("a"), q0)
    nfa.add_transition(q0, open_marker("x"), q1)
    nfa.add_transition(q1, char_pred("a"), q1)
    nfa.add_transition(q1, close_marker("x"), q2)
    nfa.add_transition(q2, char_pred("a"), q2)
    return VSetAutomaton(nfa, {"x"})


class TestVsetFunctionality:
    def test_paper_example_2_6_not_functional(self):
        report = check_vset_functional(_example_2_6_nonfunctional())
        assert not report.functional

    def test_paper_example_2_6_functional(self):
        assert is_vset_functional(_example_2_6_functional())

    def test_compiled_formulas_are_functional(self):
        for source in ("a*x{a*}a*", ".*x{a|b}.*y{c}.*"):
            assert is_vset_functional(compile_regex(source))

    def test_unclosed_variable_detected(self):
        nfa = NFA()
        q0, q1 = nfa.add_state(), nfa.add_state()
        nfa.set_initial(q0)
        nfa.add_final(q1)
        nfa.add_transition(q0, open_marker("x"), q1)
        report = check_vset_functional(VSetAutomaton(nfa, {"x"}))
        assert not report.functional
        assert "not closed" in report.reason

    def test_conflicting_configurations_detected(self):
        # Two paths to q1: one opens x, one does not.
        nfa = NFA()
        q0, q1, q2 = nfa.add_state(), nfa.add_state(), nfa.add_state()
        nfa.set_initial(q0)
        nfa.add_final(q2)
        nfa.add_transition(q0, open_marker("x"), q1)
        nfa.add_transition(q0, EPSILON, q1)
        nfa.add_transition(q1, close_marker("x"), q2)
        report = check_vset_functional(VSetAutomaton(nfa, {"x"}))
        assert not report.functional

    def test_empty_language_vacuously_functional(self):
        nfa = NFA()
        q0 = nfa.add_state()
        qf = nfa.add_state()  # unreachable
        nfa.set_initial(q0)
        nfa.add_final(qf)
        report = check_vset_functional(VSetAutomaton(nfa, {"x"}))
        assert report.functional
        assert report.language_empty

    def test_compile_rejects_nonfunctional_by_default(self):
        with pytest.raises(NotFunctionalError):
            compile_regex("x{a}x{a}")

    def test_compile_can_skip_the_gate(self):
        automaton = compile_regex("x{a}x{a}", require_functional=False)
        assert not is_vset_functional(automaton)

    def test_dead_states_do_not_affect_verdict(self):
        # A functional automaton plus an unreachable bad state.
        base = compile_regex("x{a}")
        nfa = base.nfa.copy()
        dead = nfa.add_state()
        nfa.add_transition(dead, open_marker("x"), dead)
        assert is_vset_functional(VSetAutomaton(nfa, {"x"}))
