"""Unit tests for the regex-formula AST, parser and rendering (§2.2.2)."""

import pytest

from repro.alphabet import ANY, Chars, NotChars
from repro.errors import RegexParseError
from repro.regex import parse
from repro.regex.ast import (
    Capture,
    CharClass,
    Concat,
    EmptySet,
    Epsilon,
    Optional,
    Plus,
    Star,
    Union,
    any_char,
    char,
    concat,
    epsilon,
    sigma_star,
    string_literal,
    union,
)


class TestParserBasics:
    def test_single_char(self):
        assert parse("a") == char("a")

    def test_concat(self):
        assert parse("ab") == Concat(char("a"), char("b"))

    def test_union(self):
        assert parse("a|b") == Union(char("a"), char("b"))

    def test_union_binds_weaker_than_concat(self):
        assert parse("ab|c") == Union(Concat(char("a"), char("b")), char("c"))

    def test_star_plus_optional(self):
        assert parse("a*") == Star(char("a"))
        assert parse("a+") == Plus(char("a"))
        assert parse("a?") == Optional(char("a"))

    def test_repetition_binds_tightest(self):
        assert parse("ab*") == Concat(char("a"), Star(char("b")))

    def test_grouping(self):
        assert parse("(ab)*") == Star(Concat(char("a"), char("b")))

    def test_empty_alternative_is_epsilon(self):
        assert parse("a|") == Union(char("a"), Epsilon())
        assert parse("(|a)") == Union(Epsilon(), char("a"))

    def test_epsilon_literals(self):
        assert parse("ε") == Epsilon()
        assert parse("\\e") == Epsilon()

    def test_empty_set_literals(self):
        assert parse("∅") == EmptySet()
        assert parse("\\0") == EmptySet()

    def test_wildcard(self):
        assert parse(".") == CharClass(ANY)

    def test_whitespace_is_literal(self):
        assert parse("a b") == Concat(char("a"), Concat(char(" "), char("b")))


class TestParserCaptures:
    def test_simple_capture(self):
        assert parse("x{a}") == Capture("x", char("a"))

    def test_capture_with_long_name(self):
        node = parse("xmail{a}")
        assert isinstance(node, Capture)
        assert node.variable == "xmail"

    def test_name_not_followed_by_brace_is_literal(self):
        # "ab" with no brace: two literal characters.
        assert parse("ab") == Concat(char("a"), char("b"))

    def test_nested_captures(self):
        node = parse("x{y{a}}")
        assert node == Capture("x", Capture("y", char("a")))

    def test_capture_of_alternation(self):
        node = parse("x{a|b}")
        assert node == Capture("x", Union(char("a"), char("b")))

    def test_unclosed_capture(self):
        with pytest.raises(RegexParseError):
            parse("x{a")

    def test_paper_example_2_5_email(self):
        beta = parse(".* xmail{xuser{[a-z]*}@xdomain{[a-z]*\\.[a-z]*}} .*")
        assert beta.variables() == {"xmail", "xuser", "xdomain"}


class TestParserClasses:
    def test_simple_class(self):
        assert parse("[abc]") == CharClass(Chars("abc"))

    def test_range(self):
        node = parse("[a-d]")
        assert node == CharClass(Chars("abcd"))

    def test_negated(self):
        assert parse("[^ab]") == CharClass(NotChars("ab"))

    def test_mixed_range_and_single(self):
        assert parse("[a-c9]") == CharClass(Chars("abc9"))

    def test_empty_class_rejected(self):
        with pytest.raises(RegexParseError):
            parse("[]")

    def test_unterminated_class(self):
        with pytest.raises(RegexParseError):
            parse("[ab")

    def test_reversed_range(self):
        with pytest.raises(RegexParseError):
            parse("[z-a]")

    def test_escaped_in_class(self):
        assert parse("[\\]]") == CharClass(Chars("]"))


class TestParserEscapes:
    def test_escaped_specials(self):
        for special in "|*+?(){}[].\\":
            assert parse("\\" + special) == char(special)

    def test_control_escapes(self):
        assert parse("\\n") == char("\n")
        assert parse("\\t") == char("\t")

    def test_dangling_backslash(self):
        with pytest.raises(RegexParseError):
            parse("a\\")

    def test_unescaped_special_rejected(self):
        with pytest.raises(RegexParseError):
            parse("*a")

    def test_error_carries_position(self):
        with pytest.raises(RegexParseError) as info:
            parse("ab)")
        assert info.value.position == 2


class TestAstHelpers:
    def test_size_counts_nodes(self):
        assert parse("a*x{a*}a*").size() == 9

    def test_variables(self):
        assert parse("x{a}y{b}|y{a}x{b}").variables() == {"x", "y"}

    def test_concat_of_nothing_is_epsilon(self):
        assert concat() == Epsilon()

    def test_union_of_nothing_is_empty_set(self):
        assert union() == EmptySet()

    def test_string_literal(self):
        assert string_literal("ab") == Concat(char("a"), char("b"))
        assert string_literal("") == Epsilon()

    def test_sigma_star(self):
        assert sigma_star() == Star(any_char())

    def test_combinators(self):
        node = (char("a") | char("b")) + epsilon()
        assert isinstance(node, Concat)
        assert isinstance(node.left, Union)
        assert char("a").star() == Star(char("a"))
        assert char("a").capture("x") == Capture("x", char("a"))

    def test_char_requires_single_character(self):
        with pytest.raises(ValueError):
            char("ab")


class TestRendering:
    @pytest.mark.parametrize(
        "source",
        [
            "a",
            "ab|c",
            "(a|b)c",
            "a*",
            "(ab)+",
            "x{a*}b",
            "x{y{a}}",
            "[abc]",
            "[^ab]",
            ".",
            "ε",
            "∅",
            "a?b",
            "\\*a",
            ".*x{foo}.*",
            "(ε|.* )m{[a-z]+}( .*|ε)",
        ],
    )
    def test_round_trip(self, source):
        node = parse(source)
        assert parse(str(node)) == node

    def test_renders_escapes(self):
        assert str(parse("\\{")) == "\\{"

    def test_renders_class(self):
        assert str(parse("[ba]")) == "[ab]"
