"""Chaos suite: the fleet under deterministic fault injection.

Every test drives a :class:`SpannerService` with a
:class:`~repro.runtime.faults.FaultPlan` that injects hangs, crashes,
slow decodes or shared-memory attach failures at chosen task indices,
and asserts the fault-tolerance contract:

* results that survive a fault are **byte-identical** to the serial
  engine — no tuple lost, none duplicated, order intact;
* a hung worker is detected and replaced within 2x the configured
  deadline, and exactly the hung task's future fails with
  :class:`TaskTimeoutError`;
* a query that keeps failing is quarantined
  (:class:`QueryQuarantinedError` fail-fast without consuming a
  worker), recovers through a half-open probe after the cool-down, and
  :meth:`reinstate` restores it immediately;
* overload policies shed predictably (``reject`` / ``shed_oldest``);
* the resource-governance layer degrades gracefully: shm allocation
  failures fall back to the pipe byte-identically, a flooded result
  fails (or truncates) exactly its own task without charging the
  breaker, a bloated worker is recycled with no tuple loss, and an
  oversized or wedged compilation is rejected at ``register()``
  without consuming a worker;
* no ``/dev/shm`` segment survives ``close()``, whatever was injected.

Each service numbers its tasks from 0 in submission order, so a plan
keyed on small integers targets the first chunks a test submits.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.errors import (
    OverloadedError,
    QueryQuarantinedError,
    QueryRejectedError,
    ResultLimitError,
    TaskTimeoutError,
    TransientTaskError,
)
from repro.runtime import (
    CompiledSpanner,
    FaultPlan,
    SpannerService,
    estimate_compile_states,
)
from repro.runtime.faults import FaultSpec

from test_service import (
    BACKENDS,
    DOCS,
    WORD_FORMULA,
    canonical,
    dev_shm_segments,
    _require_shm,
)

#: Backends whose workers can be killed; the serial backend's worker is
#: the calling thread, so hang/deadline enforcement is defined out.
KILLABLE_BACKENDS = ("thread", "process")

#: Deadline used by the hang tests: long enough that healthy tasks
#: (millisecond-scale) never brush it, short enough to keep the suite
#: fast.
DEADLINE = 0.5


@pytest.fixture(scope="module")
def word_serial():
    return list(CompiledSpanner(WORD_FORMULA).evaluate_many(DOCS))


def plan_for_all(kind: str, n: int, **kwargs) -> FaultPlan:
    plan = FaultPlan()
    for task in range(n):
        plan.add(task, FaultSpec(kind, **kwargs))
    return plan


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor-strike")
        with pytest.raises(ValueError):
            FaultPlan().crash(task=-1)

    def test_attempt_scoping(self):
        spec = FaultSpec("slow", attempts=(1, 3))
        assert spec.applies_to(1)
        assert not spec.applies_to(2)
        assert spec.applies_to(3)
        assert FaultSpec("slow").applies_to(7)  # None = every attempt

    def test_plan_is_inert_when_empty(self):
        assert not FaultPlan()
        assert FaultPlan().crash(task=0)

    def test_shm_attach_fault_raises_transient(self):
        with pytest.raises(TransientTaskError):
            FaultSpec("shm_attach").trigger()

    def test_resource_builders_validate(self):
        with pytest.raises(ValueError):
            FaultPlan().shm_enospc(0, -1)
        with pytest.raises(ValueError):
            FaultPlan().slow_compile(0)
        # The driver-side faults make an otherwise-empty plan live.
        assert FaultPlan().shm_enospc(3)
        assert FaultPlan().slow_compile(0.1)
        assert FaultPlan().shm_enospc(0).shm_enospc(2).enospc_packs == {0, 2}

    def test_durability_builders_validate(self):
        with pytest.raises(ValueError):
            FaultPlan().store_torn_write(-1)
        with pytest.raises(ValueError):
            FaultPlan().store_corrupt(1, -2)
        with pytest.raises(ValueError):
            FaultPlan().driver_kill(after_tasks=0)
        # Each durability fault makes an otherwise-empty plan live.
        assert FaultPlan().store_torn_write(0)
        assert FaultPlan().store_corrupt(2)
        assert FaultPlan().driver_kill(after_tasks=1)
        plan = FaultPlan().store_torn_write(0).store_torn_write(3)
        assert plan.store_torn_puts == {0, 3}
        assert FaultPlan().driver_kill(after_tasks=5).kill_after_tasks == 5

    def test_flood_amount_scoping(self):
        from repro.runtime.faults import FLOOD_TUPLES

        plan = FaultPlan().tuple_flood(task=3, amount=17, attempts=(2,))
        assert plan.flood_amount(3, 2) == 17
        assert plan.flood_amount(3, 1) is None  # wrong attempt
        assert plan.flood_amount(4, 2) is None  # wrong task
        assert FaultPlan().tuple_flood(task=0).flood_amount(0, 1) == FLOOD_TUPLES
        # A non-flood spec on the task is not a flood.
        assert FaultPlan().crash(task=0).flood_amount(0, 1) is None


class TestCrashInjection:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_then_retry_byte_identical(self, word_serial, backend):
        """Task 0 crashes its worker on the first attempt and succeeds
        on re-dispatch: the batch result must not notice — on every
        backend (process workers die by SIGKILL, thread and inline
        workers by an injected non-Exception escape)."""
        plan = FaultPlan().crash(task=0, attempts=(1,))
        with SpannerService(
            workers=2, chunk_size=2, fault_plan=plan, backend=backend
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            out = svc.submit(qid, DOCS).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
            assert svc.workers_crashed >= 1
            assert svc.tasks_retried >= 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_poison_task_gives_up_others_survive(self, word_serial, backend):
        """A task that crashes every worker it lands on fails alone
        after MAX_TASK_ATTEMPTS; every other chunk still resolves
        byte-identically."""
        plan = FaultPlan().crash(task=0)  # every attempt
        with SpannerService(
            workers=2, chunk_size=2, fault_plan=plan, backend=backend
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            futures = [
                svc.submit_chunk(qid, DOCS[i : i + 2])
                for i in range(0, len(DOCS), 2)
            ]
            with pytest.raises(RuntimeError, match="giving up"):
                futures[0].result(timeout=120)
            rest = []
            for future in futures[1:]:
                rest.extend(future.result(timeout=120))
            assert canonical(rest) == canonical(word_serial[2:])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_storm_converges(self, word_serial, backend):
        """Several first-attempt crashes across the batch: all retried,
        nothing lost or duplicated."""
        plan = FaultPlan()
        for task in (0, 3, 7):
            plan.crash(task=task, attempts=(1,))
        with SpannerService(
            workers=2, chunk_size=2, fault_plan=plan, backend=backend
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            out = svc.submit(qid, DOCS).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
            assert svc.workers_crashed >= 3


class TestHangsAndDeadlines:
    @pytest.mark.parametrize("backend", KILLABLE_BACKENDS)
    def test_hung_worker_detected_within_2x_deadline(
        self, word_serial, backend
    ):
        """Acceptance: the hang is detected, the worker killed and
        replaced, and the task's future failed with TaskTimeoutError —
        all within 2x the configured deadline.  On the thread backend
        "killed" means abandoned (a daemon thread cannot be stopped);
        the observable contract — fast failure, fleet replaced, session
        serviceable — is the same."""
        plan = FaultPlan().hang(task=0)
        with SpannerService(
            workers=2, chunk_size=2, fault_plan=plan, task_timeout=DEADLINE,
            backend=backend,
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            fut = svc.submit_chunk(qid, DOCS[:2])
            start = time.monotonic()
            with pytest.raises(TaskTimeoutError):
                fut.result(timeout=10 * DEADLINE)
            assert time.monotonic() - start <= 2 * DEADLINE
            assert svc.tasks_timed_out == 1
            # The fleet healed: a full batch still matches serial.
            out = svc.submit(qid, DOCS).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
            health = svc.health()
            assert health["counters"]["workers_killed_on_timeout"] == 1
            assert len(health["workers"]) == 2  # replacement in place

    def test_only_the_hung_task_fails(self, word_serial):
        """A hang on one chunk must not take down its batch siblings:
        futures are per-chunk, and only the hung chunk's future sees
        TaskTimeoutError."""
        plan = FaultPlan().hang(task=0)
        with SpannerService(
            workers=2, chunk_size=2, fault_plan=plan, task_timeout=DEADLINE
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            futures = [
                svc.submit_chunk(qid, DOCS[i : i + 2])
                for i in range(0, len(DOCS), 2)
            ]
            with pytest.raises(TaskTimeoutError):
                futures[0].result(timeout=120)
            rest = []
            for future in futures[1:]:
                rest.extend(future.result(timeout=120))
            assert canonical(rest) == canonical(word_serial[2:])

    def test_per_call_timeout_overrides_service_default(self):
        """timeout= on the call wins over the service default; an
        explicit None disables the deadline entirely (a slow task is
        given the time it needs)."""
        plan = FaultPlan().slow(task=0, seconds=3 * DEADLINE)
        with SpannerService(
            workers=1, chunk_size=2, fault_plan=plan, task_timeout=DEADLINE
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            # Disabled per call: the slow chunk completes exactly.
            out = svc.submit_chunk(qid, DOCS[:2], timeout=None).result(
                timeout=120
            )
            assert canonical(out) == canonical(
                list(CompiledSpanner(WORD_FORMULA).evaluate_many(DOCS[:2]))
            )
            assert svc.tasks_timed_out == 0

    def test_per_query_timeout_override(self):
        """register(timeout=...) scopes the deadline to one query."""
        plan = FaultPlan().hang(task=0)
        with SpannerService(workers=2, chunk_size=2, fault_plan=plan) as svc:
            # No service default; the deadline comes from the query.
            qid = svc.register(
                CompiledSpanner(WORD_FORMULA), timeout=DEADLINE
            )
            with pytest.raises(TaskTimeoutError):
                svc.submit_chunk(qid, DOCS[:2]).result(timeout=10 * DEADLINE)

    def test_async_extract_rejects_cleanly_on_timeout(self):
        """The awaited future rejects with TaskTimeoutError — the event
        loop neither hangs nor swallows the failure."""
        plan = FaultPlan().hang(task=0)

        async def run():
            with SpannerService(
                workers=2, chunk_size=4, fault_plan=plan,
                task_timeout=DEADLINE,
            ) as svc:
                qid = svc.register(CompiledSpanner(WORD_FORMULA))
                with pytest.raises(TaskTimeoutError):
                    await svc.extract(qid, DOCS[:4])
                # The loop (and the fleet) survive for the next call.
                return await svc.extract(qid, DOCS[4:8])

        out = asyncio.run(run())
        serial = list(CompiledSpanner(WORD_FORMULA).evaluate_many(DOCS[4:8]))
        assert canonical(out) == canonical(serial)


class TestSlowAndTransient:
    def test_slow_decode_is_not_a_fault(self, word_serial):
        """A slow task under its deadline completes byte-identically —
        deadlines punish hangs, not honest work."""
        plan = FaultPlan().slow(task=0, seconds=0.1).slow(task=1, seconds=0.1)
        with SpannerService(
            workers=2, chunk_size=2, fault_plan=plan, task_timeout=5.0
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            out = svc.submit(qid, DOCS).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
            assert svc.tasks_timed_out == 0

    def test_shm_attach_fault_retries_with_backoff(self, word_serial):
        """A transient attach failure on the first two attempts
        re-dispatches (with backoff) and succeeds on the third."""
        plan = FaultPlan().shm_fault(task=0, attempts=(1, 2))
        with SpannerService(workers=2, chunk_size=2, fault_plan=plan) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            out = svc.submit(qid, DOCS).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
            assert svc.tasks_retried == 2
            assert svc.workers_crashed == 0  # no process was lost

    def test_transient_exhaustion_surfaces_the_error(self):
        """A transient fault on every attempt gives up after the
        attempt budget and surfaces TransientTaskError to the caller."""
        plan = FaultPlan().shm_fault(task=0)
        with SpannerService(workers=1, chunk_size=2, fault_plan=plan) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            with pytest.raises(TransientTaskError):
                svc.submit_chunk(qid, DOCS[:2]).result(timeout=120)


class TestQuarantine:
    def _hang_everything(self, tasks: int = 16) -> FaultPlan:
        return plan_for_all("hang", tasks)

    def test_three_timeouts_quarantine_then_reinstate(self):
        """Acceptance: 3 consecutive deadline failures quarantine the
        query; subsequent submissions fail fast without consuming a
        worker; reinstate() restores service."""
        plan = self._hang_everything()
        with SpannerService(
            workers=1, chunk_size=2, fault_plan=plan,
            task_timeout=DEADLINE, quarantine_after=3,
            quarantine_cooldown=60.0,
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            for _ in range(3):
                with pytest.raises(TaskTimeoutError):
                    svc.submit_chunk(qid, DOCS[:2]).result(timeout=120)
            assert svc.quarantined_queries == (qid,)

            kills_before = svc.health()["counters"]["workers_killed_on_timeout"]
            start = time.monotonic()
            with pytest.raises(QueryQuarantinedError) as info:
                svc.submit_chunk(qid, DOCS[:2])
            # Fail-fast: synchronous, and no worker was burned on it.
            assert time.monotonic() - start < DEADLINE
            assert info.value.query_id == qid
            assert info.value.failures == 3
            assert info.value.retry_after > 0
            assert (
                svc.health()["counters"]["workers_killed_on_timeout"]
                == kills_before
            )

            assert svc.reinstate(qid) is True
            assert svc.quarantined_queries == ()
            # Admitted again (the corpus is still poisonous, so it
            # times out — but it *ran*, consuming a worker).
            with pytest.raises(TaskTimeoutError):
                svc.submit_chunk(qid, DOCS[:2]).result(timeout=120)
            assert svc.reinstate("never-registered") is False

    def test_half_open_probe_recovers_after_cooldown(self, word_serial):
        """After the cool-down one probe is admitted; its success
        closes the breaker and full service resumes."""
        plan = FaultPlan()
        for task in range(3):  # only the first three tasks hang
            plan.hang(task=task)
        with SpannerService(
            workers=1, chunk_size=2, fault_plan=plan,
            task_timeout=DEADLINE, quarantine_after=3,
            quarantine_cooldown=0.5,
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            for _ in range(3):
                with pytest.raises(TaskTimeoutError):
                    svc.submit_chunk(qid, DOCS[:2]).result(timeout=120)
            assert svc.quarantined_queries == (qid,)
            with pytest.raises(QueryQuarantinedError):
                svc.submit_chunk(qid, DOCS[:2])
            time.sleep(0.6)  # past the cool-down: next submit is the probe
            probe = svc.submit_chunk(qid, DOCS[:2]).result(timeout=120)
            assert canonical(probe) == canonical(
                list(CompiledSpanner(WORD_FORMULA).evaluate_many(DOCS[:2]))
            )
            assert svc.quarantined_queries == ()
            out = svc.submit(qid, DOCS).result(timeout=120)
            assert canonical(out) == canonical(word_serial)

    def test_failed_probe_rearms_the_cooldown(self):
        plan = self._hang_everything()
        with SpannerService(
            workers=1, chunk_size=2, fault_plan=plan,
            task_timeout=DEADLINE, quarantine_after=2,
            quarantine_cooldown=0.4,
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            for _ in range(2):
                with pytest.raises(TaskTimeoutError):
                    svc.submit_chunk(qid, DOCS[:2]).result(timeout=120)
            assert svc.quarantined_queries == (qid,)
            time.sleep(0.5)
            with pytest.raises(TaskTimeoutError):  # the admitted probe
                svc.submit_chunk(qid, DOCS[:2]).result(timeout=120)
            # Probe failed: quarantined again, immediately.
            with pytest.raises(QueryQuarantinedError):
                svc.submit_chunk(qid, DOCS[:2])

    def test_quarantine_is_per_query(self, word_serial):
        """One query's quarantine must not slow its neighbours."""
        plan = FaultPlan().hang(task=0)  # only "bad"'s first chunk
        with SpannerService(
            workers=2, chunk_size=2, fault_plan=plan,
            task_timeout=DEADLINE, quarantine_after=1,
            quarantine_cooldown=60.0,
        ) as svc:
            bad = svc.register(CompiledSpanner(WORD_FORMULA), query_id="bad")
            good = svc.register(
                CompiledSpanner(WORD_FORMULA), query_id="good", timeout=None
            )
            with pytest.raises(TaskTimeoutError):
                svc.submit_chunk(bad, DOCS[:2]).result(timeout=120)
            with pytest.raises(QueryQuarantinedError):
                svc.submit_chunk(bad, DOCS[:2])
            # Tasks 1+ have no faults planned: "good" serves normally.
            out = svc.submit(good, DOCS).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
            assert svc.quarantined_queries == ("bad",)


class TestOverloadPolicies:
    def test_reject_policy_raises_overloaded(self):
        plan = FaultPlan().slow(task=0, seconds=1.0)
        with SpannerService(
            workers=1, chunk_size=1, max_in_flight=1,
            on_overload="reject", fault_plan=plan,
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            first = svc.submit_chunk(qid, DOCS[:1])
            with pytest.raises(OverloadedError):
                svc.submit_chunk(qid, DOCS[1:2])
            # The in-flight task is unharmed and the slot recycles.
            first.result(timeout=120)
            retried = svc.submit_chunk(qid, DOCS[1:2]).result(timeout=120)
            serial = list(CompiledSpanner(WORD_FORMULA).evaluate_many(DOCS[1:2]))
            assert canonical(retried) == canonical(serial)

    def test_shed_oldest_fails_backlogged_task(self):
        """With the pipeline full, a new submission sheds the oldest
        *backlogged* chunk (never one already on a worker): the shed
        future fails with OverloadedError, the newcomer takes its slot,
        and every dispatched chunk completes untouched."""
        plan = FaultPlan().slow(task=0, seconds=2.0)
        with SpannerService(
            workers=1, chunk_size=1, max_in_flight=3,
            on_overload="shed_oldest", fault_plan=plan,
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            # One worker, prefetch 2: task 0 runs (slowly), task 1
            # prefetches onto the worker, task 2 stays backlogged.
            running = svc.submit_chunk(qid, DOCS[:1])
            queued = svc.submit_chunk(qid, DOCS[1:2])
            backlogged = svc.submit_chunk(qid, DOCS[2:3])
            time.sleep(0.3)  # let the collector settle the dispatch
            # Slots are full: the newcomer displaces the backlogged one.
            newcomer = svc.submit_chunk(qid, DOCS[3:4])
            with pytest.raises(OverloadedError):
                backlogged.result(timeout=120)
            assert svc.tasks_shed == 1
            serial = CompiledSpanner(WORD_FORMULA)
            for future, docs in (
                (running, DOCS[:1]),
                (queued, DOCS[1:2]),
                (newcomer, DOCS[3:4]),
            ):
                out = future.result(timeout=120)
                assert canonical(out) == canonical(
                    list(serial.evaluate_many(docs))
                )

    def test_block_policy_still_backpressures(self, word_serial):
        with SpannerService(
            workers=2, chunk_size=2, max_in_flight=2, on_overload="block"
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            assert svc.submit(qid, DOCS).result(timeout=120) == word_serial
            assert svc.tasks_shed == 0


class TestShmUnderFaults:
    def test_combined_fault_plan_leaves_shm_clean(self, word_serial):
        """Crash + hang + slow + transient in one run over forced shm:
        surviving chunks are byte-identical and /dev/shm ends empty."""
        _require_shm()
        plan = (
            FaultPlan()
            .crash(task=1, attempts=(1,))
            .hang(task=2)
            .slow(task=3, seconds=0.1)
            .shm_fault(task=4, attempts=(1,))
        )
        service = SpannerService(
            workers=2, chunk_size=2, transport="shm",
            fault_plan=plan, task_timeout=DEADLINE,
        )
        try:
            service.start()
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            futures = [
                service.submit_chunk(qid, DOCS[i : i + 2])
                for i in range(0, len(DOCS), 2)
            ]
            survived: list = []
            timed_out = 0
            for i, future in enumerate(futures):
                try:
                    survived.append((i, future.result(timeout=120)))
                except TaskTimeoutError:
                    timed_out += 1
            assert timed_out == 1  # exactly the hung chunk
            for i, out in survived:
                expected = word_serial[2 * i : 2 * i + 2]
                assert canonical(out) == canonical(expected)
        finally:
            service.close()
        assert not dev_shm_segments()

    def test_timeout_releases_segment(self):
        """The release-on-timeout path: a timed-out task's segment is
        released when its future fails, not leaked until close."""
        _require_shm()
        plan = FaultPlan().hang(task=0)
        with SpannerService(
            workers=1, chunk_size=2, transport="shm",
            fault_plan=plan, task_timeout=DEADLINE,
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            with pytest.raises(TaskTimeoutError):
                svc.submit_chunk(qid, DOCS[:2]).result(timeout=120)
            # The segment owner holds nothing live for the dead task.
            assert svc._doc_transport.live_segments() == ()
        assert not dev_shm_segments()


def _poll(predicate, timeout: float = 30.0, interval: float = 0.05) -> bool:
    """Wait for an eventually-true fleet condition (watchdog actions
    land on collector iterations, not synchronously with results)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestShmBudgetDegradation:
    """ENOSPC / budget pressure: chunks ride the pipe, results don't care."""

    def test_enospc_fallback_is_byte_identical(self, word_serial):
        """Acceptance: injected allocation failures on the first two
        packs degrade exactly those chunks to the pipe; the batch is
        byte-identical, the episodes are counted, and /dev/shm ends
        clean."""
        _require_shm()
        plan = FaultPlan().shm_enospc(0, 1)
        with SpannerService(
            workers=2, chunk_size=2, transport="shm", fault_plan=plan
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            out = svc.submit(qid, DOCS).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
            resources = svc.health()["resources"]
            assert resources["degraded_to_pipe"] == 2
        assert not dev_shm_segments()

    def test_close_drain_during_degraded_episode_unlinks(self, word_serial):
        """close(drain=True) while some chunks degraded mid-batch: every
        submitted future resolves and no segment survives the close —
        the degraded (pipe) tasks must not confuse the shutdown sweep's
        segment accounting."""
        _require_shm()
        plan = FaultPlan().shm_enospc(1, 3)
        svc = SpannerService(
            workers=2, chunk_size=2, transport="shm", fault_plan=plan
        )
        svc.start()
        qid = svc.register(CompiledSpanner(WORD_FORMULA))
        futures = [
            svc.submit_chunk(qid, DOCS[i : i + 2])
            for i in range(0, len(DOCS), 2)
        ]
        svc.close(drain=True)
        out = []
        for future in futures:
            out.extend(future.result(timeout=0))  # resolved by the drain
        assert canonical(out) == canonical(word_serial)
        assert not dev_shm_segments()


class TestResultCaps:
    """Per-query/per-call result-size caps against injected floods."""

    def test_flood_fails_exactly_the_flooded_task(self, word_serial):
        """Acceptance: a tuple flood on task 0 fails that task alone
        with ResultLimitError; every sibling chunk is byte-identical."""
        plan = FaultPlan().tuple_flood(task=0, amount=500)
        with SpannerService(
            workers=2, chunk_size=2, max_tuples=100, fault_plan=plan
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            futures = [
                svc.submit_chunk(qid, DOCS[i : i + 2])
                for i in range(0, len(DOCS), 2)
            ]
            with pytest.raises(ResultLimitError) as info:
                futures[0].result(timeout=120)
            assert info.value.kind == "tuples"
            assert info.value.limit == 100
            rest = []
            for future in futures[1:]:
                rest.extend(future.result(timeout=120))
            assert canonical(rest) == canonical(word_serial[2:])
            assert svc.tasks_result_limited == 1
            assert svc.docs_truncated == 0

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_result_limit_never_charges_the_breaker(self, transport):
        """A capped result indicts the input, not the fleet: even with
        quarantine_after=1 the query stays admitted and the very next
        submission serves normally."""
        if transport == "shm":
            _require_shm()
        plan = FaultPlan().tuple_flood(task=0, amount=500)
        with SpannerService(
            workers=1, chunk_size=2, transport=transport,
            max_tuples=100, fault_plan=plan,
            quarantine_after=1, quarantine_cooldown=60.0,
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            with pytest.raises(ResultLimitError):
                svc.submit_chunk(qid, DOCS[:2]).result(timeout=120)
            assert svc.quarantined_queries == ()
            # Admitted immediately — no QueryQuarantinedError, no probe.
            out = svc.submit_chunk(qid, DOCS[2:4]).result(timeout=120)
            serial = list(CompiledSpanner(WORD_FORMULA).evaluate_many(DOCS[2:4]))
            assert canonical(out) == canonical(serial)
        if transport == "shm":
            assert not dev_shm_segments()

    def test_truncate_policy_returns_exact_serial_prefix(self):
        """on_result_limit='truncate': the bounded result is the exact
        radix-order prefix of the serial stream, counted per document."""
        doc = "the quick brown fox"  # four matches
        serial = list(CompiledSpanner(WORD_FORMULA).stream(doc))
        assert len(serial) == 4
        with SpannerService(
            workers=1, chunk_size=4, max_tuples=3, on_result_limit="truncate"
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            out = svc.submit_chunk(qid, [doc]).result(timeout=120)
            assert out == [serial[:3]]  # one doc, exact prefix
            assert svc.docs_truncated == 1
            assert svc.tasks_result_limited == 0
            # An explicit per-call None disables the inherited cap.
            full = svc.submit_chunk(qid, [doc], max_tuples=None).result(
                timeout=120
            )
            assert full == [serial]
            # Counting is a fixed-size answer: never capped.
            counts = svc.submit_counts(qid, [doc]).result(timeout=120)
            assert counts == [4]

    def test_byte_cap_and_per_call_override(self):
        """max_result_bytes fails a task whose pickled tuples overrun
        the byte budget; the per-call knob beats the service default."""
        doc = "the quick brown fox"
        with SpannerService(workers=1, chunk_size=4) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            with pytest.raises(ResultLimitError) as info:
                svc.submit_chunk(qid, [doc], max_result_bytes=10).result(
                    timeout=120
                )
            assert info.value.kind == "bytes"
            # Uncapped by default: the same chunk serves fine.
            out = svc.submit_chunk(qid, [doc]).result(timeout=120)
            assert out == [list(CompiledSpanner(WORD_FORMULA).stream(doc))]


class TestMemoryWatchdog:
    """RSS-based drain-and-recycle against injected worker bloat."""

    BLOAT = 64 * 1024 * 1024

    @staticmethod
    def _limits() -> tuple[int, int]:
        """(soft, hard) anchored to this process's live RSS.

        Workers are forked, so they start at roughly the parent's
        footprint — which depends on how much of the test session ran
        before this test.  Absolute limits flake (a full-suite parent
        forks workers already past a 48 MiB hard limit); limits
        relative to the parent's RSS right now put healthy workers
        safely under the soft limit and the injected 64 MiB bloat
        safely past the hard one, wherever the baseline sits.
        """
        from repro.runtime.backends.worker import current_rss

        base = int(current_rss())
        bloat = TestMemoryWatchdog.BLOAT
        return base + bloat // 2, base + 3 * bloat // 4

    def test_bloated_worker_recycled_no_tuple_loss(self, word_serial):
        """Acceptance: a worker pushed over worker_memory_limit by an
        injected leak is drained and recycled at a task boundary; the
        batch result never notices, and the recycle is attributed in
        health()."""
        plan = FaultPlan().rss_bloat(task=1, amount=self.BLOAT)
        soft, _hard = self._limits()
        with SpannerService(
            workers=2, chunk_size=2,
            worker_memory_limit=soft,
            fault_plan=plan,
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            out = svc.submit(qid, DOCS).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
            assert _poll(lambda: svc.workers_recycled_on_memory >= 1)
            health = svc.health()
            assert health["resources"]["memory_recycles"] >= 1
            assert health["counters"]["workers_killed_on_memory"] == 0
            # A graceful recycle is an ordinary replacement, not a kill:
            # the fleet is back at strength.
            assert _poll(
                lambda: len(
                    [w for w in svc.health()["workers"] if w["alive"]]
                ) == 2
            )
            # The fleet still serves correctly after the recycle.
            again = svc.submit(qid, DOCS[:4]).result(timeout=120)
            assert canonical(again) == canonical(word_serial[:4])

    def test_hard_limit_kills_past_the_soft_limit(self, word_serial):
        """A worker past worker_memory_hard_limit is killed outright
        (orphaned tasks re-dispatched), counted separately from the
        graceful recycles."""
        plan = FaultPlan().rss_bloat(task=1, amount=self.BLOAT, attempts=(1,))
        soft, hard = self._limits()
        with SpannerService(
            workers=2, chunk_size=2,
            worker_memory_limit=soft,
            worker_memory_hard_limit=hard,
            fault_plan=plan,
        ) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            out = svc.submit(qid, DOCS).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
            assert _poll(
                lambda: svc.health()["counters"]["workers_killed_on_memory"]
                >= 1
            )


class TestAdmissionControl:
    """register()-time rejection: size estimates and compile deadlines."""

    SMALL_FORMULA = "x{[a-z]+}"

    def test_oversized_estimate_rejected_without_a_worker(self):
        """Acceptance: a formula whose Lemma 3.4 size bound exceeds
        max_compile_states is rejected before compilation; the fleet is
        untouched and smaller queries still register and serve."""
        big = estimate_compile_states(WORD_FORMULA)
        small = estimate_compile_states(self.SMALL_FORMULA)
        assert small < big  # the test's premise
        with SpannerService(
            workers=1, chunk_size=4, max_compile_states=big - 1
        ) as svc:
            with pytest.raises(QueryRejectedError) as info:
                svc.register(WORD_FORMULA)
            assert info.value.estimated_states == big
            assert info.value.max_compile_states == big - 1
            assert svc.queries_rejected == 1
            assert svc.workers_crashed == 0
            qid = svc.register(self.SMALL_FORMULA)
            out = svc.submit(qid, DOCS[:4]).result(timeout=120)
            serial = list(
                CompiledSpanner(self.SMALL_FORMULA).evaluate_many(DOCS[:4])
            )
            assert canonical(out) == canonical(serial)

    def test_estimate_is_an_upper_bound(self):
        """The admission estimate must never under-count: the compiled
        automaton (post-trim) is at most as large as the bound."""
        for formula in (WORD_FORMULA, self.SMALL_FORMULA, ".*a{[0-9]}.*"):
            assert CompiledSpanner(formula).n_states <= estimate_compile_states(
                formula
            )

    def test_compile_timeout_kills_the_wedged_compile(self):
        """Acceptance: a compilation past compile_timeout is killed and
        rejected promptly; no worker is consumed and the fleet stays
        healthy."""
        plan = FaultPlan().slow_compile(5.0)
        with SpannerService(
            workers=1, chunk_size=4, compile_timeout=0.2, fault_plan=plan
        ) as svc:
            start = time.monotonic()
            with pytest.raises(QueryRejectedError, match="compile_timeout"):
                svc.register(WORD_FORMULA)
            assert time.monotonic() - start < 4.0  # killed, not awaited
            assert svc.queries_rejected == 1
            health = svc.health()
            assert [w["alive"] for w in health["workers"]] == [True]

    def test_sandboxed_compile_artifact_serves(self, word_serial):
        """A compile that fits its deadline (run in the throwaway
        subprocess, since a delay fault is planned) produces an
        artifact that serves byte-identically."""
        plan = FaultPlan().slow_compile(0.1)
        with SpannerService(
            workers=2, chunk_size=2, compile_timeout=30.0, fault_plan=plan
        ) as svc:
            qid = svc.register(WORD_FORMULA)
            out = svc.submit(qid, DOCS).result(timeout=120)
            assert canonical(out) == canonical(word_serial)
            assert svc.queries_rejected == 0
