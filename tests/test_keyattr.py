"""Tests for key-attribute detection (Proposition 3.6)."""

import pytest

from repro.enumeration import enumerate_tuples
from repro.vset import compile_regex, is_key_attribute
from repro.vset.keyattr import key_attribute_witness


class TestKeyAttribute:
    def test_sole_variable_of_deterministic_shape_is_key(self):
        # x{a*}b on any string: x's span determines the tuple trivially
        # (there is only one variable).
        automaton = compile_regex("x{a*}b")
        assert is_key_attribute(automaton, "x")

    def test_two_free_variables_not_key(self):
        automaton = compile_regex("x{a*}a*y{a*}")
        assert not is_key_attribute(automaton, "x")

    def test_determined_companion_is_key(self):
        # y is forced to span exactly the b-run after x; x determines y.
        automaton = compile_regex("x{a*}y{b}")
        assert is_key_attribute(automaton, "x")
        assert is_key_attribute(automaton, "y")

    def test_padding_breaks_key(self):
        # .*x{a}.*y{b}.* — a fixed x still allows many y.
        automaton = compile_regex(".*x{a}.*y{b}.*")
        assert not is_key_attribute(automaton, "x")

    def test_unknown_variable(self):
        automaton = compile_regex("x{a}")
        with pytest.raises(KeyError):
            is_key_attribute(automaton, "nope")

    def test_empty_language_everything_is_key(self):
        automaton = compile_regex("x{a}∅", require_functional=False)
        assert is_key_attribute(automaton, "x")

    def test_witness_is_genuine(self):
        automaton = compile_regex("x{a*}a*y{a*}")
        witness = key_attribute_witness(automaton, "x")
        assert witness is not None
        s = witness.string
        tuples = set(enumerate_tuples(automaton, s))
        assert witness.tuple_a in tuples
        assert witness.tuple_b in tuples
        assert witness.tuple_a != witness.tuple_b
        assert witness.tuple_a["x"] == witness.tuple_b["x"]

    def test_no_witness_for_key(self):
        automaton = compile_regex("x{a*}b")
        assert key_attribute_witness(automaton, "x") is None

    def test_union_shape_key(self):
        # x{a}|x{b}: single variable, string determines nothing more.
        automaton = compile_regex("x{a}b|x{b}a")
        assert is_key_attribute(automaton, "x")

    def test_disjunction_with_hidden_variable(self):
        # For a fixed x, y can sit left or right: not a key.
        automaton = compile_regex("y{a}x{b}a|a(x{b})y{a}")
        assert not is_key_attribute(automaton, "x")
        witness = key_attribute_witness(automaton, "x")
        assert witness is not None
        assert witness.string == "aba"
