"""Tests for the rolling-hash substring index."""

from __future__ import annotations

from itertools import product as cartesian_product

import pytest

from repro.spans import Span
from repro.text import SubstringIndex, repeats_text
from repro.vset.equality import equal_span_choices

STRINGS = [
    "",
    "a",
    "ab",
    "aaaa",
    "abab",
    "mississippi",
    repeats_text(16, seed=3),
    repeats_text(14, seed=9, alphabet="abc"),
    repeats_text(12, seed=1, alphabet="abcdefgh", plant=None),
]


def naive_buckets(s: str, length: int) -> list[list[int]]:
    table: dict[str, list[int]] = {}
    for start in range(1, len(s) + 2 - length):
        table.setdefault(s[start - 1 : start - 1 + length], []).append(start)
    return list(table.values())


class TestBuckets:
    @pytest.mark.parametrize("s", STRINGS)
    def test_buckets_match_naive_for_every_length(self, s):
        index = SubstringIndex(s)
        for length in range(0, len(s) + 1):
            assert list(index.buckets(length).values()) == naive_buckets(
                s, length
            )

    def test_bucket_order_is_first_occurrence_order(self):
        # "ab" first occurs at 1, "ba" at 2, "bb" at 3 — bucket order
        # must follow, it is what keeps the materializing choice
        # enumeration byte-stable.
        index = SubstringIndex("abba" + "ab")
        reps = [starts[0] for starts in index.buckets(2).values()]
        assert reps == sorted(reps)

    def test_length_zero_is_one_class(self):
        index = SubstringIndex("abc")
        assert list(index.buckets(0).values()) == [[1, 2, 3, 4]]


class TestQueries:
    @pytest.mark.parametrize("s", [s for s in STRINGS if s])
    def test_equal_matches_direct_comparison(self, s):
        index = SubstringIndex(s)
        n = len(s)
        for length in range(0, n + 1):
            for p in range(1, n + 2 - length):
                for q in range(1, n + 2 - length):
                    expected = (
                        s[p - 1 : p - 1 + length] == s[q - 1 : q - 1 + length]
                    )
                    assert index.equal(p, q, length) == expected

    def test_class_rep_is_first_occurrence(self):
        s = "abcabc"
        index = SubstringIndex(s)
        assert index.class_rep(4, 3) == 1  # "abc" at 4 reps to 1
        assert index.class_rep(1, 3) == 1
        assert index.occurrences(4, 3) == [1, 4]

    def test_first_occurrence_at_or_after(self):
        s = "abcabcabc"
        index = SubstringIndex(s)
        assert index.first_occurrence_at_or_after(1, 3, 1) == 1
        assert index.first_occurrence_at_or_after(1, 3, 2) == 4
        assert index.first_occurrence_at_or_after(1, 3, 5) == 7
        assert index.first_occurrence_at_or_after(1, 3, 8) is None

    @pytest.mark.parametrize("s", [s for s in STRINGS if len(s) >= 2])
    def test_lce_matches_naive(self, s):
        index = SubstringIndex(s)
        n = len(s)
        for p in range(1, n + 1):
            for q in range(1, n + 1):
                naive = 0
                while (
                    p + naive <= n
                    and q + naive <= n
                    and s[p - 1 + naive] == s[q - 1 + naive]
                ):
                    naive += 1
                assert index.lce(p, q) == naive, (s, p, q)


class TestChoiceEnumeration:
    def naive_choices(self, s: str, k: int):
        n = len(s)
        for length in range(0, n + 1):
            buckets: dict[str, list[int]] = {}
            for start in range(1, n + 2 - length):
                buckets.setdefault(
                    s[start - 1 : start - 1 + length], []
                ).append(start)
            for starts in buckets.values():
                spans = [Span(p, p + length) for p in starts]
                yield from cartesian_product(spans, repeat=k)

    @pytest.mark.parametrize("s", STRINGS[:7])
    @pytest.mark.parametrize("k", [2, 3])
    def test_equal_span_choices_identical_to_naive(self, s, k):
        assert list(equal_span_choices(s, k)) == list(
            self.naive_choices(s, k)
        )

    def test_shared_index_reused(self):
        s = "abab"
        index = SubstringIndex(s)
        with_index = list(equal_span_choices(s, 2, index))
        assert with_index == list(equal_span_choices(s, 2))
