"""Edge-case and robustness tests across the stack."""

import pytest

from repro import compile_regex, enumerate_tuples, evaluate, parse
from repro.enumeration import SpannerEvaluator
from repro.oracle import oracle_evaluate
from repro.queries import CanonicalEvaluator, CompiledEvaluator, RegexCQ
from repro.spans import Span, SpanTuple
from repro.vset import join, project, union


class TestUnicodeAndOddCharacters:
    def test_unicode_text(self):
        s = "héllo wörld"
        rel = evaluate("(ε|.* )x{[^ ]+}( .*|ε)", s)
        strings = {mu["x"].extract(s) for mu in rel}
        assert strings == {"héllo", "wörld"}

    def test_newlines_in_text(self):
        s = "a\nb"
        rel = evaluate(".*x{\\n}.*", s)
        assert len(rel) == 1

    def test_tab_escape(self):
        rel = evaluate("x{\\t}", "\t")
        assert len(rel) == 1

    def test_space_heavy_pattern(self):
        rel = evaluate("x{ }", " ")
        assert len(rel) == 1


class TestDeepAndWideFormulas:
    def test_very_long_literal(self):
        text = "ab" * 300
        formula = parse(text)  # 600-char literal, balanced tree
        assert evaluate(formula, text)
        assert not evaluate(formula, text + "a")

    def test_wide_alternation(self):
        source = "|".join(f"x{{a{'b' * i}}}" for i in range(30))
        automaton = compile_regex(source)
        rel = automaton.evaluate("abbb")
        assert len(rel) == 1

    def test_deeply_nested_groups(self):
        source = "(" * 40 + "a" + ")" * 40
        assert evaluate(source, "a")

    def test_nested_captures_chain(self):
        vars_ = [f"v{i}" for i in range(10)]
        source = "".join(f"{v}{{" for v in vars_) + "a" + "}" * 10
        rel = evaluate(source, "a")
        mu = next(iter(rel))
        assert all(mu[v] == Span(1, 2) for v in vars_)


class TestZeroAnswerAndSingularities:
    def test_star_of_capture_free_empty_match(self):
        # (ε)* must terminate and match only ε.
        assert evaluate("(ε)*", "")
        assert not evaluate("(ε)*", "a")

    def test_epsilon_loop_automaton(self):
        # a* with nested stars: (a*)* — pathological but legal.
        assert evaluate("(a*)*", "aaa")

    def test_all_spans_relation_size(self):
        # x{.*} inside .* padding: every span of s.
        s = "abc"
        rel = evaluate(".*x{.*}.*", s)
        assert len(rel) == len(list(Span.all_spans(s)))

    def test_single_char_string_all_ops(self):
        a1 = compile_regex("x{a}|x{a}a*")
        a2 = compile_regex("x{a}")
        j = join(a1, a2)
        u = union([project(j, ["x"]), a2])
        got = set(enumerate_tuples(u, "a"))
        assert got == oracle_evaluate(u, "a")


class TestEvaluatorReuse:
    def test_evaluator_is_reiterable(self):
        evaluator = SpannerEvaluator(compile_regex("a*x{a*}a*"), "aa")
        first = list(evaluator)
        second = list(evaluator)
        assert first == second

    def test_compiled_evaluator_cache_reuse(self):
        query = RegexCQ(["x"], [".*x{a+}.*", ".*x{a+}b.*"])
        evaluator = CompiledEvaluator()
        r1 = evaluator.evaluate(query, "aab")
        r2 = evaluator.evaluate(query, "aab")
        assert r1 == r2
        # Different strings reuse the static compilation.
        r3 = evaluator.evaluate(query, "ab")
        assert {mu["x"].extract("ab") for mu in r3} == {"a"}

    def test_canonical_evaluator_reuse_across_queries(self):
        evaluator = CanonicalEvaluator()
        q1 = RegexCQ(["x"], [".*x{a}.*"])
        q2 = RegexCQ(["y"], [".*y{b}.*"])
        assert evaluator.evaluate(q1, "ab")
        assert evaluator.evaluate(q2, "ab")


class TestLargeAlphabetPredicates:
    def test_negated_class_join(self):
        a1 = compile_regex(".*x{[^b]+}.*")
        a2 = compile_regex(".*x{[^c]+}.*")
        j = join(a1, a2)
        s = "abc"
        got = {mu["x"].extract(s) for mu in enumerate_tuples(j, s)}
        # x avoids both b and c: only 'a' runs.
        assert got == {"a"}

    def test_wildcard_with_negated_join(self):
        a1 = compile_regex("x{.}")
        a2 = compile_regex("x{[^z]}")
        j = join(a1, a2)
        assert list(enumerate_tuples(j, "q"))
        assert not list(enumerate_tuples(j, "z"))


class TestDeterministicOutputOrder:
    def test_radix_order_stable_across_runs(self):
        automaton = compile_regex(".*x{[ab]+}.*")
        s = "abab"
        runs = [list(enumerate_tuples(automaton, s)) for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]

    def test_relation_sorted_stable(self):
        rel = evaluate(".*x{a+}.*", "aaa")
        assert [str(t["x"]) for t in rel.sorted()] == sorted(
            str(t["x"]) for t in rel
        )
