"""Unit tests for ref-words (§2.2.1): validity, clr, encode/decode."""

import pytest

from repro.alphabet import close_marker, open_marker
from repro.errors import SpannerError
from repro.refwords import (
    all_valid_refwords,
    clr,
    is_valid,
    refword_from_tuple,
    refword_str,
    tuple_from_refword,
)
from repro.spans import Span, SpanTuple


def _r(*symbols):
    return tuple(symbols)


OX = open_marker("x")
CX = close_marker("x")
OY = open_marker("y")
CY = close_marker("y")


class TestValidity:
    def test_paper_example_2_2_valid(self):
        # r1 := c x⊢ oo ⊣x ie   and   r2 := x⊢ ⊣x
        r1 = _r("c", OX, "o", "o", CX, "i", "e")
        r2 = _r(OX, CX)
        assert is_valid(r1, {"x"})
        assert is_valid(r2, {"x"})

    def test_paper_example_2_2_invalid(self):
        # r3 := ⊣x ⊣x ...  wrong order; r4 opens x twice
        r3 = _r(CX, "a", OX)
        r4 = _r(OX, "a", CX, OX, "a", CX)
        assert not is_valid(r3, {"x"})
        assert not is_valid(r4, {"x"})

    def test_paper_example_2_2_larger_variable_set(self):
        # valid for {x} but not for {x, y}: y never opened.
        r1 = _r("c", OX, "o", "o", CX)
        assert is_valid(r1, {"x"})
        assert not is_valid(r1, {"x", "y"})

    def test_foreign_marker_invalid(self):
        assert not is_valid(_r(OX, CX, OY, CY), {"x"})

    def test_close_before_open(self):
        assert not is_valid(_r(CX, OX), {"x"})

    def test_double_close(self):
        assert not is_valid(_r(OX, CX, CX), {"x"})

    def test_empty_refword_no_vars(self):
        assert is_valid((), set())


class TestClr:
    def test_erases_markers(self):
        assert clr(_r("c", OX, "o", "o", CX, "i", "e")) == "cooie"

    def test_empty(self):
        assert clr(_r(OX, CX)) == ""

    def test_refword_str(self):
        assert refword_str(_r("a", OX, "b", CX)) == "a⊢xb⊣x"


class TestTupleDecoding:
    def test_paper_example_2_3(self):
        # r1 := c x⊢ oo ⊣x kie  ->  mu(x) = [2, 4>
        r1 = _r("c", OX, "o", "o", CX, "k", "i", "e")
        assert tuple_from_refword(r1, {"x"})["x"] == Span(2, 4)
        # r2 := cookie x⊢ ⊣x  ->  mu(x) = [7, 7>
        r2 = _r("c", "o", "o", "k", "i", "e", OX, CX)
        assert tuple_from_refword(r2, {"x"})["x"] == Span(7, 7)

    def test_same_tuple_different_interleavings(self):
        # x⊢ y⊢ ⊣x ⊣y and y⊢ x⊢ ⊣y ⊣x encode the same tuple.
        a = tuple_from_refword(_r(OX, OY, CX, CY), {"x", "y"})
        b = tuple_from_refword(_r(OY, OX, CY, CX), {"x", "y"})
        assert a == b == SpanTuple({"x": Span(1, 1), "y": Span(1, 1)})

    def test_invalid_raises(self):
        with pytest.raises(SpannerError):
            tuple_from_refword(_r(CX, OX), {"x"})

    def test_round_trip_encode_decode(self):
        s = "abcab"
        mu = SpanTuple({"x": Span(2, 4), "y": Span(4, 4)})
        r = refword_from_tuple(mu, s)
        assert clr(r) == s
        assert tuple_from_refword(r, {"x", "y"}) == mu

    def test_encode_rejects_overflowing_span(self):
        with pytest.raises(SpannerError):
            refword_from_tuple(SpanTuple({"x": Span(1, 9)}), "ab")


class TestAllValidRefwords:
    def test_count_single_variable(self):
        # For |s|=1 and one variable: 3 spans, one interleaving each
        # except [i,i> spans have a single order anyway -> 3 ref-words.
        words = list(all_valid_refwords("a", ["x"]))
        assert len(words) == 3
        assert all(is_valid(w, {"x"}) for w in words)
        assert all(clr(w) == "a" for w in words)

    def test_count_two_variables_empty_string(self):
        # On the empty string both variables sit at gap 1.  Tuples: 1.
        # Interleavings of {x⊢,⊣x,y⊢,⊣y} with each open before its
        # close: 4!/(2*2) = 6.
        words = list(all_valid_refwords("", ["x", "y"]))
        assert len(words) == 6
        tuples = {tuple_from_refword(w, {"x", "y"}) for w in words}
        assert len(tuples) == 1

    def test_distinct_tuples_covered(self):
        words = list(all_valid_refwords("ab", ["x"]))
        tuples = {tuple_from_refword(w, {"x"}) for w in words}
        # N=2 -> (N+1)(N+2)/2 = 6 spans.
        assert len(tuples) == 6
