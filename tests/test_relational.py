"""Tests for the relational substrate: relations, algebra, hypergraphs."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    GYOResult,
    Hypergraph,
    Relation,
    difference,
    evaluate_acyclic,
    evaluate_generic,
    natural_join,
    project,
    rename,
    select,
    semijoin,
    union,
)
from repro.spans import Span, SpanRelation, SpanTuple


class TestRelation:
    def test_schema_validation(self):
        with pytest.raises(SchemaError):
            Relation(["a", "a"])
        with pytest.raises(SchemaError):
            Relation(["a"], [(1, 2)])

    def test_from_mappings(self):
        rel = Relation.from_mappings(["a", "b"], [{"a": 1, "b": 2}])
        assert (1, 2) in rel.rows

    def test_span_relation_round_trip(self):
        sr = SpanRelation(
            ["x", "y"],
            [SpanTuple({"x": Span(1, 2), "y": Span(2, 2)})],
        )
        rel = Relation.from_span_relation(sr)
        assert rel.to_span_relation() == sr

    def test_equality_modulo_column_order(self):
        a = Relation(["x", "y"], [(1, 2)])
        b = Relation(["y", "x"], [(2, 1)])
        assert a == b

    def test_column(self):
        rel = Relation(["a", "b"], [(1, 2), (3, 2)])
        assert rel.column("a") == {1, 3}
        assert rel.column("b") == {2}

    def test_mappings(self):
        rel = Relation(["a"], [(1,)])
        assert list(rel.mappings()) == [{"a": 1}]


class TestAlgebra:
    def test_natural_join_shared(self):
        r = Relation(["a", "b"], [(1, 2), (3, 4)])
        s = Relation(["b", "c"], [(2, 9), (2, 8), (5, 7)])
        joined = natural_join(r, s)
        assert set(joined.rows) == {(1, 2, 9), (1, 2, 8)}
        assert joined.schema == ("a", "b", "c")

    def test_natural_join_disjoint_cartesian(self):
        r = Relation(["a"], [(1,), (2,)])
        s = Relation(["b"], [(9,)])
        assert len(natural_join(r, s)) == 2

    def test_semijoin(self):
        r = Relation(["a", "b"], [(1, 2), (3, 4)])
        s = Relation(["b"], [(2,)])
        assert set(semijoin(r, s).rows) == {(1, 2)}

    def test_semijoin_no_shared_attrs(self):
        r = Relation(["a"], [(1,)])
        assert semijoin(r, Relation(["b"], [(9,)])) == r
        assert len(semijoin(r, Relation(["b"]))) == 0

    def test_project_dedups(self):
        r = Relation(["a", "b"], [(1, 2), (1, 3)])
        assert len(project(r, ["a"])) == 1

    def test_project_reorders(self):
        r = Relation(["a", "b"], [(1, 2)])
        assert project(r, ["b", "a"]).rows == {(2, 1)}

    def test_union_aligns_columns(self):
        a = Relation(["x", "y"], [(1, 2)])
        b = Relation(["y", "x"], [(2, 1), (5, 6)])
        u = union(a, b)
        assert set(u.rows) == {(1, 2), (6, 5)}

    def test_difference(self):
        a = Relation(["x"], [(1,), (2,)])
        b = Relation(["x"], [(2,)])
        assert difference(a, b).rows == {(1,)}

    def test_select(self):
        r = Relation(["a"], [(1,), (5,)])
        assert select(r, lambda row: row["a"] > 3).rows == {(5,)}

    def test_rename(self):
        r = Relation(["a"], [(1,)])
        assert rename(r, {"a": "z"}).schema == ("z",)


class TestHypergraph:
    def test_path_is_alpha_and_gamma_acyclic(self):
        h = Hypergraph({"R": {"a", "b"}, "S": {"b", "c"}})
        assert h.is_alpha_acyclic()
        assert h.is_gamma_acyclic()
        assert h.is_berge_acyclic()

    def test_triangle_is_cyclic(self):
        h = Hypergraph(
            {"R": {"a", "b"}, "S": {"b", "c"}, "T": {"a", "c"}}
        )
        assert not h.is_alpha_acyclic()
        assert not h.is_gamma_acyclic()

    def test_alpha_but_not_gamma(self):
        # {A,B}, {B,C}, {A,B,C}: the classic separator.
        h = Hypergraph(
            {"R": {"a", "b"}, "S": {"b", "c"}, "T": {"a", "b", "c"}}
        )
        assert h.is_alpha_acyclic()
        assert not h.is_gamma_acyclic()

    def test_gamma_but_not_berge(self):
        # Two edges sharing two vertices: berge-cyclic, gamma-acyclic.
        h = Hypergraph({"R": {"a", "b"}, "S": {"a", "b"}})
        assert h.is_gamma_acyclic()
        assert not h.is_berge_acyclic()

    def test_gyo_join_tree(self):
        h = Hypergraph(
            {"R": {"a", "b"}, "S": {"b", "c"}, "T": {"c", "d"}}
        )
        result = h.gyo()
        assert result.acyclic
        roots = [n for n, p in result.parent.items() if p is None]
        assert len(roots) == 1
        assert set(result.elimination_order) == {"R", "S", "T"}

    def test_gyo_single_edge(self):
        assert Hypergraph({"R": {"a", "b"}}).gyo().acyclic

    def test_disconnected_acyclic(self):
        h = Hypergraph({"R": {"a"}, "S": {"b"}})
        assert h.is_alpha_acyclic()

    def test_clique_query_hypergraph_from_paper(self):
        # gamma (all pairs) + deltas (per-slot stars) for k=3: the
        # Theorem 3.2 shape — gamma-acyclic by construction.
        k = 3
        gamma_vars = {
            f"{p}{i}{j}"
            for i in range(1, k + 1)
            for j in range(i + 1, k + 1)
            for p in "xy"
        }
        edges = {"gamma": gamma_vars}
        for l in range(1, k + 1):
            vars_l = {f"y{i}{l}" for i in range(1, l)} | {
                f"x{l}{j}" for j in range(l + 1, k + 1)
            }
            edges[f"delta{l}"] = vars_l
        assert Hypergraph(edges).is_gamma_acyclic()

    def test_vertices(self):
        h = Hypergraph({"R": {"a", "b"}})
        assert h.vertices == {"a", "b"}


class TestAcyclicEvaluation:
    def _relations(self):
        return {
            "R": Relation(["a", "b"], [(1, 2), (3, 4), (1, 5)]),
            "S": Relation(["b", "c"], [(2, 7), (4, 8), (9, 9)]),
            "T": Relation(["c", "d"], [(7, 0), (8, 1)]),
        }

    def _hypergraph(self):
        return Hypergraph(
            {"R": {"a", "b"}, "S": {"b", "c"}, "T": {"c", "d"}}
        )

    def test_matches_generic_full_output(self):
        relations = self._relations()
        gyo = self._hypergraph().gyo()
        out = ["a", "b", "c", "d"]
        assert evaluate_acyclic(relations, gyo, out) == evaluate_generic(
            relations, out
        )

    def test_matches_generic_projected(self):
        relations = self._relations()
        gyo = self._hypergraph().gyo()
        assert evaluate_acyclic(relations, gyo, ["a", "d"]) == (
            evaluate_generic(relations, ["a", "d"])
        )

    def test_boolean_fast_path(self):
        relations = self._relations()
        gyo = self._hypergraph().gyo()
        result = evaluate_acyclic(relations, gyo, [])
        assert result.schema == ()
        assert bool(result)

    def test_boolean_unsatisfiable(self):
        relations = self._relations()
        relations["T"] = Relation(["c", "d"], [(999, 0)])
        gyo = self._hypergraph().gyo()
        assert not evaluate_acyclic(relations, gyo, [])

    def test_rejects_cyclic_forest(self):
        bad = GYOResult(False, {}, ())
        with pytest.raises(SchemaError):
            evaluate_acyclic(self._relations(), bad, [])

    def test_rejects_uncovered_output(self):
        gyo = self._hypergraph().gyo()
        with pytest.raises(SchemaError):
            evaluate_acyclic(self._relations(), gyo, ["zzz"])

    def test_generic_triangle(self):
        relations = {
            "R": Relation(["a", "b"], [(1, 2), (2, 3)]),
            "S": Relation(["b", "c"], [(2, 3), (3, 1)]),
            "T": Relation(["a", "c"], [(1, 3), (2, 1)]),
        }
        out = evaluate_generic(relations, ["a", "b", "c"])
        assert set(out.rows) == {(1, 2, 3), (2, 3, 1)}

    def test_generic_single_relation(self):
        relations = {"R": Relation(["a"], [(1,)])}
        assert evaluate_generic(relations, ["a"]).rows == {(1,)}

    def test_generic_rejects_empty(self):
        with pytest.raises(SchemaError):
            evaluate_generic({}, [])
