"""Crash-recovery suite: durable fleet state under deterministic faults.

The contract of PR 8's persistence layer, end to end:

* ``kill -9`` of a driver mid-stream (the ``driver_kill`` chaos hook)
  followed by :meth:`SpannerService.restore` yields a fleet whose
  results are **byte-identical** to the crashed one's, with *no
  recompilation* for store-resident artifacts — the store's hit
  counter proves the warm path ran — and the orphaned ``/dev/shm``
  segments the crash stranded are swept at restore;
* a corrupted or torn store entry (the ``store_corrupt`` /
  ``store_torn_write`` hooks) is quarantined and transparently
  recompiled — counted, never fatal to any query;
* warm ``register()`` across driver generations sharing a ``FileStore``
  skips the compile and returns byte-identical results;
* ``restore()`` re-runs admission control under *today's* limits and
  re-arms quarantines that were open at the crash.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import (
    QueryQuarantinedError,
    QueryRejectedError,
    SpannerError,
)
from repro.runtime import CompiledSpanner, FaultPlan, SpannerService
from repro.runtime.store import FileStore
from repro.runtime.transport import shm_available

from test_service import DOCS, WORD_FORMULA, canonical, dev_shm_segments

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


@pytest.fixture(scope="module")
def word_serial():
    return list(CompiledSpanner(WORD_FORMULA).evaluate_many(DOCS))


# -- Warm start ---------------------------------------------------------------


class TestWarmStart:
    def test_second_generation_registers_from_the_store(
        self, tmp_path, word_serial
    ):
        root = tmp_path / "arts"
        with SpannerService(
            workers=2, chunk_size=3, artifact_store=FileStore(root)
        ) as cold:
            q_cold = cold.register(WORD_FORMULA)
            out_cold = cold.submit(q_cold, DOCS).result()
            stats = cold.artifact_store.stats()
            assert stats["misses"] == 1 and stats["puts"] == 1

        # A new driver generation sharing the directory: no compile.
        store = FileStore(root)
        with SpannerService(
            workers=2, chunk_size=3, artifact_store=store
        ) as warm:
            q_warm = warm.register(WORD_FORMULA)
            assert q_warm == q_cold  # payload bytes identical -> same id
            stats = store.stats()
            assert stats["hits"] == 1 and stats["puts"] == 0
            out_warm = warm.submit(q_warm, DOCS).result()
        assert canonical(out_warm) == canonical(out_cold)
        assert out_warm == word_serial

    def test_session_generations_share_one_store_entry(
        self, tmp_path, word_serial
    ):
        # ParallelSpanner registers a *precompiled* artifact whose
        # pickle bytes differ per process; the session must key the
        # store by its remembered source so a second driver generation
        # warm-hits instead of re-putting under a fresh key.
        from repro.runtime.parallel import ParallelSpanner

        root = tmp_path / "arts"
        with ParallelSpanner(
            WORD_FORMULA, workers=2, artifact_store=FileStore(root)
        ) as cold:
            out_cold = list(cold.evaluate_many(DOCS))
        store = FileStore(root)
        assert store.keys() and all(k.startswith("s") for k in store.keys())
        with ParallelSpanner(
            WORD_FORMULA, workers=2, artifact_store=store
        ) as warm:
            out_warm = list(warm.evaluate_many(DOCS))
            stats = store.stats()
            assert stats["hits"] == 1 and stats["puts"] == 0
        assert len(store.keys()) == 1  # no cache pollution across runs
        assert out_cold == word_serial == out_warm

    def test_register_keys_a_precompiled_artifact_by_its_source(
        self, tmp_path, word_serial
    ):
        # The seam the session rides: register(precompiled, source=...)
        # must revive the entry a plain register(source) wrote — and
        # serve the *stored* bytes, giving the cold generation's id.
        root = tmp_path / "arts"
        with SpannerService(artifact_store=FileStore(root)) as cold:
            q_cold = cold.register(WORD_FORMULA)
        store = FileStore(root)
        with SpannerService(workers=2, artifact_store=store) as warm:
            q_warm = warm.register(
                CompiledSpanner(WORD_FORMULA), source=WORD_FORMULA
            )
            assert q_warm == q_cold
            stats = store.stats()
            assert stats["hits"] == 1 and stats["puts"] == 0
            assert warm.submit(q_warm, DOCS).result() == word_serial

    def test_store_surfaces_in_health(self, tmp_path):
        with SpannerService(
            workers=1, artifact_store=FileStore(tmp_path / "arts")
        ) as service:
            service.register(WORD_FORMULA)
            health = service.health()
            store = health["resources"]["store"]
            assert store["puts"] == 1
            json.dumps(health)  # and the whole snapshot stays loggable

    def test_no_store_means_no_store_section(self):
        with SpannerService(workers=1) as service:
            assert service.health()["resources"]["store"] is None


# -- Corruption recovery ------------------------------------------------------


class TestCorruptionRecovery:
    @pytest.mark.parametrize("hook", ["store_torn_write", "store_corrupt"])
    def test_damaged_entry_recompiled_not_fatal(
        self, tmp_path, word_serial, hook
    ):
        root = tmp_path / "arts"
        plan = getattr(FaultPlan(), hook)(0)  # damage the first put
        with SpannerService(
            workers=2,
            chunk_size=3,
            artifact_store=FileStore(root),
            fault_plan=plan,
        ) as sick:
            qid = sick.register(WORD_FORMULA)  # put lands damaged
            out = sick.submit(qid, DOCS).result()
            assert out == word_serial  # registration itself never relied on it

        # Next generation reads the damaged entry: quarantine + clean
        # recompile, never an error out of register().
        store = FileStore(root)
        with SpannerService(workers=2, chunk_size=3, artifact_store=store) as s:
            q2 = s.register(WORD_FORMULA)
            assert q2 == qid
            stats = store.stats()
            assert stats["corrupt_quarantined"] == 1
            assert stats["puts"] == 1  # the recompiled artifact re-landed
            assert store.quarantined()  # the corpse is kept for forensics
            assert s.submit(q2, DOCS).result() == word_serial

        # And a third generation is fully healthy again.
        store3 = FileStore(root)
        with SpannerService(workers=1, artifact_store=store3) as s3:
            s3.register(WORD_FORMULA)
            assert store3.stats()["hits"] == 1
            assert store3.stats()["corrupt_quarantined"] == 0


# -- Manifest + restore -------------------------------------------------------


class TestRestore:
    def test_restore_is_byte_identical_and_warm(self, tmp_path, word_serial):
        manifest = tmp_path / "fleet.json"
        service = SpannerService(
            workers=2, chunk_size=3, manifest_path=manifest
        )
        qid = service.register(WORD_FORMULA, max_tuples=10_000)
        out1 = service.submit(qid, DOCS).result()
        service.close()

        restored = SpannerService.restore(manifest)
        try:
            assert restored.queries == (qid,)
            stats = restored.artifact_store.stats()
            assert stats["hits"] == 1 and stats["puts"] == 0  # no recompile
            assert restored.workers == 2 and restored.chunk_size == 3
            # The per-query override came back through the manifest.
            assert restored._query_caps[qid][0] == 10_000
            out2 = restored.submit(qid, DOCS).result()
        finally:
            restored.close()
        assert canonical(out2) == canonical(out1)
        assert out2 == word_serial

    def test_restore_overrides_win(self, tmp_path):
        manifest = tmp_path / "fleet.json"
        service = SpannerService(workers=2, manifest_path=manifest)
        service.register(WORD_FORMULA)
        service.close()
        restored = SpannerService.restore(manifest, workers=3)
        try:
            assert restored.workers == 3
        finally:
            restored.close()

    def test_restore_recompiles_when_the_store_was_emptied(
        self, tmp_path, word_serial
    ):
        manifest = tmp_path / "fleet.json"
        service = SpannerService(workers=2, chunk_size=3,
                                 manifest_path=manifest)
        qid = service.register(WORD_FORMULA)
        service.close()
        for path in (tmp_path / "artifacts").glob("*.art"):
            path.unlink()

        restored = SpannerService.restore(manifest)
        try:
            stats = restored.artifact_store.stats()
            # No warm hit was possible; exactly one recompile re-landed.
            assert stats["hits"] == 0 and stats["puts"] == 1
            assert restored.queries == (qid,)
            assert restored.submit(qid, DOCS).result() == word_serial
        finally:
            restored.close()

    def test_restore_without_artifact_or_source_raises(self, tmp_path):
        # A precompiled registration has no recompilable source: losing
        # its store entry must be a loud SpannerError, not a silent
        # rebuild of a different fleet.
        manifest = tmp_path / "fleet.json"
        service = SpannerService(workers=1, manifest_path=manifest)
        service.register(CompiledSpanner(WORD_FORMULA))
        service.close()
        for path in (tmp_path / "artifacts").glob("*.art"):
            path.unlink()
        with pytest.raises(SpannerError, match="no recompilable source"):
            SpannerService.restore(manifest)

    def test_restore_reruns_admission_control(self, tmp_path):
        manifest = tmp_path / "fleet.json"
        service = SpannerService(workers=1, manifest_path=manifest)
        service.register(WORD_FORMULA)
        service.close()
        # Yesterday's fleet admitted it; today's limit must not.
        with pytest.raises(QueryRejectedError):
            SpannerService.restore(manifest, max_compile_states=1)

    def test_restore_rearms_open_quarantines(self, tmp_path):
        manifest = tmp_path / "fleet.json"
        service = SpannerService(
            workers=1,
            manifest_path=manifest,
            quarantine_after=2,
            quarantine_cooldown=60.0,
        )
        qid = service.register(WORD_FORMULA)
        with service._lock:
            service._record_failure_locked(qid)
            service._record_failure_locked(qid)
        service._flush_manifest()
        assert qid in service.quarantined_queries
        service.close()

        restored = SpannerService.restore(manifest)
        try:
            assert qid in restored.quarantined_queries
            with pytest.raises(QueryQuarantinedError):
                restored.submit(qid, DOCS[:2])
            # The operator escape hatch still works after a restore.
            assert restored.reinstate(qid) is True
            assert restored.submit(qid, DOCS[:2]).result() == list(
                CompiledSpanner(WORD_FORMULA).evaluate_many(DOCS[:2])
            )
        finally:
            restored.close()

    def test_reinstate_is_durable(self, tmp_path):
        manifest = tmp_path / "fleet.json"
        service = SpannerService(
            workers=1, manifest_path=manifest, quarantine_after=1
        )
        qid = service.register(WORD_FORMULA)
        with service._lock:
            service._record_failure_locked(qid)
        service._flush_manifest()
        service.reinstate(qid)  # writes the manifest immediately
        service.close()
        restored = SpannerService.restore(manifest)
        try:
            assert restored.quarantined_queries == ()
        finally:
            restored.close()

    def test_unknown_manifest_version_rejected(self, tmp_path):
        manifest = tmp_path / "fleet.json"
        service = SpannerService(workers=1, manifest_path=manifest)
        service.register(WORD_FORMULA)
        service.close()
        doc = json.loads(manifest.read_text())
        doc["format"] = 999
        manifest.write_text(json.dumps(doc))
        with pytest.raises(SpannerError, match="format"):
            SpannerService.restore(manifest)

    def test_unreadable_manifest_rejected(self, tmp_path):
        missing = tmp_path / "absent.json"
        with pytest.raises(SpannerError, match="unreadable"):
            SpannerService.restore(missing)
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(SpannerError, match="unreadable"):
            SpannerService.restore(garbled)

    def test_restore_precompiled_equality_query(self, tmp_path):
        from repro.queries import CompiledEvaluator, RegexCQ

        query = RegexCQ(
            ["x", "y"],
            [".*x{[ab]+}.*", ".*y{[ab]+}.*"],
            equalities=[["x", "y"]],
        )
        engine = CompiledEvaluator().equality_runtime(query)
        assert engine is not None
        docs = ["ab ab b", "aa bb aa", "no match 42"]
        manifest = tmp_path / "fleet.json"
        service = SpannerService(workers=2, manifest_path=manifest)
        qid = service.register(engine, query_id="eq")
        out1 = service.submit(qid, docs).result()
        service.close()

        restored = SpannerService.restore(manifest)
        try:
            assert restored.artifact_store.stats()["hits"] == 1
            out2 = restored.submit(qid, docs).result()
        finally:
            restored.close()
        assert canonical(out2) == canonical(out1)


# -- kill -9 mid-stream -------------------------------------------------------

_KILL_CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro.runtime import SpannerService
from repro.runtime.faults import FaultPlan

plan = FaultPlan().driver_kill(after_tasks=1)
service = SpannerService(
    workers=2,
    chunk_size=1,
    transport="shm",
    manifest_path={manifest!r},
    fault_plan=plan,
)
service.start()
qid = service.register({formula!r}, query_id="words")
docs = ["say hi ho " + "x" * 256] * 8
futures = [service.submit_chunk(qid, [doc]) for doc in docs]
for future in futures:
    future.result()
print("UNREACHABLE: the driver_kill hook never fired", flush=True)
sys.exit(3)
"""


@pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)
class TestDriverKill:
    def test_kill9_restore_parity_and_shm_sweep(self, tmp_path):
        manifest = tmp_path / "fleet.json"
        script = _KILL_CHILD.format(
            src=os.path.abspath(SRC),
            manifest=str(manifest),
            formula=WORD_FORMULA,
        )
        before = dev_shm_segments()
        # Orphaned workers inherit the driver's stdio, so piping +
        # communicate() would block on EOF forever: log to files and
        # wait() on the driver alone.
        log = (tmp_path / "child.log").open("wb")
        child = subprocess.Popen(
            [sys.executable, "-c", script],
            start_new_session=True,
            stdout=log,
            stderr=log,
        )
        try:
            child.wait(timeout=90)
        finally:
            log.close()
            # Reap whatever the dead driver left behind (workers that
            # were blocked on their task queues when it was killed).
            try:
                os.killpg(child.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
        assert child.returncode == -signal.SIGKILL, (
            child.returncode,
            (tmp_path / "child.log").read_text(errors="replace"),
        )
        # The crash stranded segments: no close(), no finalizer ran.
        orphans = dev_shm_segments() - before
        assert orphans, "expected the SIGKILLed driver to strand segments"
        # The manifest survived the crash (it is journaled at register
        # time, before any task flowed).
        doc = json.loads(manifest.read_text())
        assert [q["query_id"] for q in doc["queries"]] == ["words"]

        restored = SpannerService.restore(manifest)
        try:
            # Startup swept the dead session's segments...
            assert not (dev_shm_segments() & orphans)
            assert restored.health()["resources"]["orphans_swept"] >= len(
                orphans
            )
            # ...the artifact revived without recompilation...
            stats = restored.artifact_store.stats()
            assert stats["hits"] == 1 and stats["puts"] == 0
            # ...and the restored fleet serves byte-identical results.
            docs = ["say hi ho " + "x" * 256] * 8
            out2 = restored.submit("words", docs).result()
            expected = list(
                CompiledSpanner(WORD_FORMULA).evaluate_many(docs)
            )
            assert canonical(out2) == canonical(expected)
        finally:
            restored.close()
        # The restored fleet's own shutdown leaves /dev/shm clean too.
        assert not (dev_shm_segments() - before)
