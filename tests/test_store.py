"""Tests for the crash-safe artifact store (`repro.runtime.store`).

The contract: entries round-trip byte-identically through the versioned,
checksummed blob format; every artifact type the fleet ships
(``AutomatonTables``, extractor spanners, ``CompiledEqualityQuery``)
survives a pickle → FileStore → unpickle cycle behaving identically;
anything torn or bit-flipped is quarantined and surfaced as a picklable
:class:`~repro.errors.ArtifactCorruptError` — after which the next read
is a clean miss; a bumped format version is rejected, never guessed at;
a byte budget evicts least-recently-used entries; and ``MemoryStore``
counts and corrupts exactly like ``FileStore``.
"""

from __future__ import annotations

import hashlib
import pickle
import struct

import pytest

from repro.errors import ArtifactCorruptError
from repro.runtime.store import (
    FileStore,
    MemoryStore,
    STORE_FORMAT_VERSION,
    decode_artifact,
    encode_artifact,
)


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryStore()
    return FileStore(tmp_path / "artifacts")


class TestBlobFormat:
    def test_round_trip(self):
        payload = b"the compiled artifact bytes"
        assert decode_artifact(encode_artifact(payload)) == payload

    def test_truncated_header(self):
        with pytest.raises(ArtifactCorruptError) as exc:
            decode_artifact(b"SJ", key="k1")
        assert exc.value.reason == "truncated"
        assert exc.value.key == "k1"

    def test_truncated_payload(self):
        blob = encode_artifact(b"x" * 100)[:-40]
        with pytest.raises(ArtifactCorruptError) as exc:
            decode_artifact(blob)
        assert exc.value.reason == "truncated"

    def test_bad_magic(self):
        blob = b"XXXXX" + encode_artifact(b"payload")[5:]
        with pytest.raises(ArtifactCorruptError) as exc:
            decode_artifact(blob)
        assert exc.value.reason == "bad-magic"

    def test_flipped_payload_byte_fails_checksum(self):
        blob = bytearray(encode_artifact(b"payload"))
        blob[-1] ^= 0xFF
        with pytest.raises(ArtifactCorruptError) as exc:
            decode_artifact(bytes(blob))
        assert exc.value.reason == "bad-checksum"

    def test_future_format_version_is_rejected(self):
        # A store written by a newer build must be quarantined, not
        # misparsed: bump the version field, fix nothing else.
        payload = b"payload"
        blob = bytearray(encode_artifact(payload))
        struct.pack_into(">H", blob, 5, STORE_FORMAT_VERSION + 1)
        with pytest.raises(ArtifactCorruptError) as exc:
            decode_artifact(bytes(blob))
        assert exc.value.reason == "bad-version"

    def test_corrupt_error_pickles_with_fields(self):
        err = ArtifactCorruptError("k9", "bad-checksum", "detail text")
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.key, clone.reason, clone.detail) == (
            "k9", "bad-checksum", "detail text"
        )
        assert "quarantined" in str(clone)


class TestStoreContract:
    def test_miss_then_put_then_hit(self, store):
        assert store.get("sdeadbeef") is None
        store.put("sdeadbeef", b"artifact")
        assert store.get("sdeadbeef") == b"artifact"
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert stats["entries"] == 1

    def test_overwrite_same_key(self, store):
        store.put("k1", b"old")
        store.put("k1", b"new")
        assert store.get("k1") == b"new"
        assert store.stats()["entries"] == 1

    def test_invalid_keys_rejected(self, store):
        for bad in ("", "../escape", "a/b", ".hidden", "sp ace"):
            with pytest.raises(ValueError):
                store.put(bad, b"x")
            with pytest.raises(ValueError):
                store.get(bad)

    def test_torn_write_quarantined_then_clean_miss(self, store):
        store.inject_torn_write({0})
        store.put("k1", b"artifact bytes" * 10)
        with pytest.raises(ArtifactCorruptError) as exc:
            store.get("k1")
        assert exc.value.reason == "truncated"
        # The corrupt entry was quarantined: reads are clean misses now.
        assert store.get("k1") is None
        stats = store.stats()
        assert stats["corrupt_quarantined"] == 1
        # Recovery: recompile-and-re-put makes the key serve again.
        store.put("k1", b"artifact bytes" * 10)
        assert store.get("k1") == b"artifact bytes" * 10

    def test_corrupt_write_fails_checksum(self, store):
        store.inject_corrupt({1})
        store.put("healthy", b"fine")
        store.put("flipped", b"payload")
        assert store.get("healthy") == b"fine"
        with pytest.raises(ArtifactCorruptError) as exc:
            store.get("flipped")
        assert exc.value.reason == "bad-checksum"
        assert store.get("flipped") is None

    def test_verify_reports_without_quarantining(self, store):
        store.inject_corrupt({1})
        store.put("good", b"fine")
        store.put("bad", b"payload")
        report = store.verify()
        assert report == {"good": "ok", "bad": "corrupt"}
        # verify() is read-only: the corrupt entry is still there, and
        # only an actual get() quarantines it.
        assert store.stats()["corrupt_quarantined"] == 0
        assert sorted(store.keys()) == ["bad", "good"]

    def test_budget_evicts_lru(self, tmp_path):
        blob_size = len(encode_artifact(b"x" * 100))
        store = FileStore(tmp_path / "arts", budget=3 * blob_size)
        for i in range(3):
            store.put(f"k{i}", b"x" * 100)
        # Refresh k0's recency: k1 becomes the LRU victim.
        assert store.get("k0") is not None
        store.put("k3", b"x" * 100)
        assert store.stats()["evicted"] == 1
        assert store.get("k1") is None
        assert store.get("k0") is not None
        assert store.get("k3") is not None

    def test_single_entry_over_budget_is_not_stored(self, store):
        tiny = MemoryStore(budget=10)
        tiny.put("k1", b"x" * 1000)
        assert tiny.get("k1") is None
        assert tiny.stats()["puts"] == 0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            MemoryStore(budget=0)
        with pytest.raises(ValueError):
            MemoryStore(budget=-5)


class TestFileStoreDurability:
    def test_quarantine_renames_to_corrupt(self, tmp_path):
        store = FileStore(tmp_path / "arts")
        store.inject_torn_write({0})
        store.put("k1", b"payload")
        with pytest.raises(ArtifactCorruptError):
            store.get("k1")
        assert store.quarantined() == ["k1.corrupt"]
        assert store.gc_quarantined() == 1
        assert store.quarantined() == []

    def test_no_tmp_files_left_behind(self, tmp_path):
        root = tmp_path / "arts"
        store = FileStore(root)
        for i in range(5):
            store.put(f"k{i}", b"payload" * i)
        leftovers = [p.name for p in root.iterdir()
                     if not p.name.endswith(".art")]
        assert leftovers == []

    def test_entries_survive_reopen(self, tmp_path):
        root = tmp_path / "arts"
        FileStore(root).put("k1", b"persisted")
        reopened = FileStore(root)
        assert reopened.get("k1") == b"persisted"
        assert reopened.stats()["hits"] == 1

    def test_on_disk_bitrot_detected(self, tmp_path):
        # Corruption landing *after* the write (a decaying disk rather
        # than a torn write): flip one byte of the file directly.
        root = tmp_path / "arts"
        store = FileStore(root)
        store.put("k1", b"payload bytes")
        path = root / "k1.art"
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactCorruptError):
            store.get("k1")
        assert store.get("k1") is None


class TestArtifactRoundTrips:
    """Every registered artifact type through a FileStore cycle."""

    DOCS = ["say hi ho", "ümläut 42", "", "a1b2c3", "x" * 500]

    def _cycle(self, artifact, tmp_path):
        store = FileStore(tmp_path / "arts")
        payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        key = "s" + hashlib.sha256(payload).hexdigest()[:24]
        store.put(key, payload)
        revived = store.get(key)
        assert revived == payload  # byte-identical through the framing
        return pickle.loads(revived)

    def test_automaton_tables(self, tmp_path):
        from repro.runtime.compiled import CompiledSpanner

        spanner = CompiledSpanner("(ε|.*[^a-z])x{[a-z]+}([^a-z].*|ε)")
        tables = self._cycle(spanner.tables, tmp_path)
        revived = CompiledSpanner.from_tables(tables)
        for doc in self.DOCS:
            assert list(revived.stream(doc)) == list(spanner.stream(doc))

    def test_extractor_spanner_tables(self, tmp_path):
        from repro.extractors import compile_extractor
        from repro.runtime.compiled import CompiledSpanner

        spanner = compile_extractor(".*n{[0-9]+}.*")
        tables = self._cycle(spanner.tables, tmp_path)
        revived = CompiledSpanner.from_tables(tables)
        for doc in self.DOCS:
            assert list(revived.stream(doc)) == list(spanner.stream(doc))

    def test_compiled_equality_query(self, tmp_path):
        from repro.queries import CompiledEvaluator, RegexCQ

        query = RegexCQ(
            ["x", "y"],
            [".*x{[a-z]+}.*", ".*y{[a-z]+}.*"],
            equalities=[["x", "y"]],
        )
        engine = CompiledEvaluator().equality_runtime(query)
        assert engine is not None
        revived = self._cycle(engine, tmp_path)
        docs = ["abc abc", "zz yy zz", "one two one two"]
        for doc in docs:
            assert list(revived.evaluate(doc)) == list(engine.evaluate(doc))
