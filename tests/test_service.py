"""Tests for the long-lived serving fleet (``SpannerService``).

The contract: a fleet serving any number of registered queries —
equality-free spanners and fused ``CompiledEqualityQuery`` workloads
alike — returns results **byte-identical and in-order** versus the
serial runtime, whatever the worker count, chunking, recycling
(``max_tasks_per_worker``), crash/re-dispatch history or front-end
(sync futures or asyncio); and the lifecycle is graceful: shutdown
drains in-flight work, a killed worker's tasks are re-dispatched
without dropping or duplicating tuples, and an asyncio cancellation
leaves the fleet fully serviceable.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.queries import CompiledEvaluator, RegexCQ
from repro.runtime import CompiledSpanner, SpannerService

WORD_FORMULA = "(ε|.*[^a-z])x{[a-z]+}([^a-z].*|ε)"
DIGIT_FORMULA = ".*d{[0-9]+}.*"

#: Every concrete compute backend; parity tests run over all three to
#: pin the contract that the substrate never shows in the bytes.
BACKENDS = ("serial", "thread", "process")

DOCS = [
    "say hi ho",
    "",
    "a1bc2",
    "UPPER lower",
    "zzz",
    "the quick brown fox",
    "no-match-HERE-404",
    "ab cd ab",
] * 4  # 32 docs: several chunks at chunk_size 3


def canonical(out: list) -> bytes:
    """Byte rendering of per-document tuple lists (order-sensitive)."""
    lines = [
        ";".join(
            " ".join(f"{v}={t[v]}" for v in sorted(t.variables))
            for t in per_doc
        )
        for per_doc in out
    ]
    return "\n".join(lines).encode()


@pytest.fixture(scope="module")
def word_serial():
    return list(CompiledSpanner(WORD_FORMULA).evaluate_many(DOCS))


@pytest.fixture(scope="module")
def digit_serial():
    return list(CompiledSpanner(DIGIT_FORMULA).evaluate_many(DOCS))


def equality_engine():
    """A fused equality engine (``CompiledEqualityQuery``) + its corpus."""
    query = RegexCQ(
        ["x", "y"],
        [".*x{[ab]+}.*", ".*y{[ab]+}.*"],
        equalities=[["x", "y"]],
    )
    engine = CompiledEvaluator().equality_runtime(query)
    assert engine is not None
    docs = ["ababab", "aabbaa", "babab", "abba", "bb", ""] * 3
    return engine, docs


class TestFleetMatchesSerial:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_two_queries_one_fleet_byte_identical(
        self, word_serial, digit_serial, backend
    ):
        """Acceptance: 2 workers, >= 2 registered queries (one of them
        an equality query), results byte-identical and in-order —
        whatever compute backend carries the fleet."""
        eq_engine, eq_docs = equality_engine()
        eq_serial = list(eq_engine.evaluate_many(eq_docs))
        with SpannerService(workers=2, chunk_size=3, backend=backend) as service:
            q_word = service.register(CompiledSpanner(WORD_FORMULA))
            q_digit = service.register(CompiledSpanner(DIGIT_FORMULA))
            q_eq = service.register(eq_engine)
            # All three dispatched before any result is consumed: the
            # queries genuinely share the same workers.
            f_word = service.submit(q_word, DOCS)
            f_digit = service.submit(q_digit, DOCS)
            f_eq = service.submit(q_eq, eq_docs)
            assert canonical(f_word.result()) == canonical(word_serial)
            assert canonical(f_digit.result()) == canonical(digit_serial)
            assert canonical(f_eq.result()) == canonical(eq_serial)

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_forced_recycle_byte_identical(self, word_serial, transport):
        """max_tasks_per_worker=1: every task retires a worker; the
        output must not notice — segment release included, when the
        documents ride shared memory."""
        if transport == "shm":
            _require_shm()
        with SpannerService(
            workers=2, chunk_size=2, max_tasks_per_worker=1,
            transport=transport,
        ) as service:
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            out = service.submit(qid, DOCS).result()
            assert canonical(out) == canonical(word_serial)
            assert service.workers_recycled > 0
        if transport == "shm":
            assert not dev_shm_segments()

    def test_recycling_prunes_exited_processes(self, word_serial):
        """A continuously recycling fleet must not accumulate process
        handles forever (the lifetime list is pruned as workers exit)."""
        with SpannerService(
            workers=2, chunk_size=1, max_tasks_per_worker=1
        ) as service:
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            for _ in range(2):
                assert service.submit(qid, DOCS).result() == word_serial
            assert service.workers_recycled >= 32
            deadline = time.time() + 5
            while time.time() < deadline:
                if len(service._all_processes) <= 2 * service.workers:
                    break
                time.sleep(0.05)
            assert len(service._all_processes) <= 2 * service.workers + 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_recycle_across_queries(self, word_serial, digit_serial, backend):
        eq_engine, eq_docs = equality_engine()
        eq_serial = list(eq_engine.evaluate_many(eq_docs))
        with SpannerService(
            workers=2, chunk_size=4, max_tasks_per_worker=2, backend=backend
        ) as service:
            ids = [
                service.register(CompiledSpanner(WORD_FORMULA)),
                service.register(CompiledSpanner(DIGIT_FORMULA)),
                service.register(eq_engine),
            ]
            futs = [
                service.submit(ids[0], DOCS),
                service.submit(ids[1], DOCS),
                service.submit(ids[2], eq_docs),
            ]
            assert [f.result() for f in futs] == [
                word_serial, digit_serial, eq_serial
            ]
            assert service.workers_recycled > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counts_and_limit(self, word_serial, backend):
        with SpannerService(workers=2, chunk_size=3, backend=backend) as service:
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            capped = service.submit(qid, DOCS, limit=2).result()
            assert capped == [per_doc[:2] for per_doc in word_serial]
            counts = service.submit_counts(qid, DOCS).result()
            assert counts == [len(per_doc) for per_doc in word_serial]
            capped_counts = service.submit_counts(qid, DOCS, cap=3).result()
            assert capped_counts == [min(c, 3) for c in counts]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_submit_files(self, tmp_path, word_serial, backend):
        paths = []
        for i, doc in enumerate(DOCS[:10]):
            path = tmp_path / f"doc{i}.txt"
            path.write_text(doc, encoding="utf-8")
            paths.append(str(path))
        with SpannerService(workers=2, chunk_size=3, backend=backend) as service:
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            assert service.submit_files(qid, paths).result() == word_serial[:10]
            with pytest.raises(OSError):
                service.submit_files(
                    qid, paths + ["/nonexistent/x"]
                ).result()
            # An unreadable file fails its batch; the fleet survives.
            assert service.submit(qid, DOCS[:4]).result() == word_serial[:4]


class TestRegistration:
    def test_fingerprint_dedupes_identical_artifacts(self):
        spanner = CompiledSpanner(WORD_FORMULA)
        with SpannerService(workers=1) as service:
            first = service.register(spanner)
            second = service.register(spanner)
            assert first == second
            assert len(service.queries) == 1

    def test_explicit_id_conflict_raises(self):
        with SpannerService(workers=1) as service:
            service.register(CompiledSpanner(WORD_FORMULA), query_id="logs")
            # Same name, same artifact: fine (idempotent).
            service.register(CompiledSpanner(WORD_FORMULA), query_id="logs")
            with pytest.raises(ValueError):
                service.register(
                    CompiledSpanner(DIGIT_FORMULA), query_id="logs"
                )

    def test_unknown_query_id_raises(self):
        with SpannerService(workers=1) as service:
            with pytest.raises(KeyError):
                service.submit_chunk("no-such-query", ["doc"])

    def test_late_registration_reaches_running_workers(self, digit_serial):
        with SpannerService(workers=2, chunk_size=3) as service:
            q1 = service.register(CompiledSpanner(WORD_FORMULA))
            service.submit(q1, DOCS[:6]).result()  # fleet is warm
            q2 = service.register(CompiledSpanner(DIGIT_FORMULA))
            assert service.submit(q2, DOCS).result() == digit_serial

    def test_validation(self):
        with pytest.raises(ValueError):
            SpannerService(workers=0)
        with pytest.raises(ValueError):
            SpannerService(chunk_size=0)
        with pytest.raises(ValueError):
            SpannerService(max_tasks_per_worker=0)
        with pytest.raises(ValueError):
            SpannerService(max_in_flight=0)


class TestFailurePaths:
    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_killed_worker_redispatches_without_loss_or_dup(
        self, word_serial, transport
    ):
        """SIGKILL one worker mid-batch: the batch still resolves to
        exactly the serial result — nothing dropped, nothing doubled —
        and the fleet keeps serving afterwards.  Over shm transport
        this also exercises segment release on worker *death*, not
        just on clean resolution."""
        if transport == "shm":
            _require_shm()
        service = SpannerService(workers=2, chunk_size=2, transport=transport)
        try:
            service.start()
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            future = service.submit(qid, DOCS)
            victim = service._workers[0].process
            os.kill(victim.pid, signal.SIGKILL)
            assert canonical(future.result(timeout=120)) == canonical(
                word_serial
            )
            assert service.workers_crashed == 1
            # Replacement spawned: the fleet is whole and serviceable.
            assert service.submit(qid, DOCS[:5]).result(
                timeout=60
            ) == word_serial[:5]
        finally:
            service.close()
        if transport == "shm":
            assert not dev_shm_segments()

    def test_kill_during_each_phase_converges(self, word_serial):
        """Kill a worker at a few offsets; at-most-once resolution must
        hold at every interleaving (idle, mid-task, near-drain)."""
        for delay in (0.0, 0.05):
            service = SpannerService(workers=2, chunk_size=1)
            try:
                service.start()
                qid = service.register(CompiledSpanner(WORD_FORMULA))
                future = service.submit(qid, DOCS)
                time.sleep(delay)
                os.kill(service._workers[-1].process.pid, signal.SIGKILL)
                assert future.result(timeout=120) == word_serial
            finally:
                service.close()

    def test_shutdown_drains_in_flight_work(self, word_serial):
        """close() with work in flight resolves every future first."""
        service = SpannerService(workers=2, chunk_size=2)
        service.start()
        qid = service.register(CompiledSpanner(WORD_FORMULA))
        futures = [service.submit(qid, DOCS) for _ in range(3)]
        service.close()  # drain-then-stop
        for future in futures:
            assert future.result(timeout=0) == word_serial
        with pytest.raises(RuntimeError):
            service.submit_chunk(qid, DOCS[:2])

    def test_terminate_cancels_outstanding(self):
        service = SpannerService(workers=2, chunk_size=1)
        service.start()
        qid = service.register(CompiledSpanner(WORD_FORMULA))
        futures = [service.submit_chunk(qid, ["a b c"]) for _ in range(64)]
        service.close(drain=False)
        # Every future is resolved one way or the other — nothing hangs.
        done = sum(1 for f in futures if f.done())
        assert done == len(futures)

    def test_close_is_idempotent(self):
        service = SpannerService(workers=1)
        service.close()
        service.close()
        with pytest.raises(RuntimeError):
            service.start()

    def test_drain_timeout_fails_unresolved_futures(self):
        """close(drain=True, timeout=...) must never leave a future
        pending: work the drain window could not finish is failed with
        ServiceClosedError, and the close returns promptly (the timeout
        also bounds the worker joins)."""
        from repro.errors import ServiceClosedError
        from repro.runtime.faults import FaultPlan

        plan = FaultPlan()
        for task in range(8):
            plan.hang(task=task)
        service = SpannerService(workers=2, chunk_size=1, fault_plan=plan)
        service.start()
        qid = service.register(CompiledSpanner(WORD_FORMULA))
        futures = [service.submit_chunk(qid, [doc]) for doc in DOCS[:8]]
        start = time.monotonic()
        service.close(drain=True, timeout=0.5)
        elapsed = time.monotonic() - start
        assert elapsed < 10  # bounded even though every worker hangs
        for future in futures:
            assert future.done()
            with pytest.raises(ServiceClosedError):
                future.result(timeout=0)


class TestHealth:
    def test_health_snapshot_shape_and_counters(self, word_serial):
        with SpannerService(workers=2, chunk_size=3) as service:
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            idle = service.health()
            assert idle["backend"] == {
                "name": "process", "worker_model": "process"
            }
            assert len(idle["workers"]) == 2
            for w in idle["workers"]:
                assert w["alive"]
                assert w["running_task"] is None  # nothing dispatched yet
                assert w["heartbeat_age"] is None
            assert idle["backlog_depth"] == 0
            assert idle["queries_registered"] == 1
            assert idle["quarantined_queries"] == {}

            assert service.submit(qid, DOCS).result() == word_serial
            busy = service.health()
            counters = busy["counters"]
            assert counters["tasks_completed"] == len(DOCS) // 3 + 1
            assert counters["tasks_timed_out"] == 0
            assert counters["worker_restarts"] == 0
            assert busy["tasks_outstanding"] == 0

    def test_health_snapshot_survives_json_round_trip(self, word_serial):
        # Operators ship health() to log pipelines: every snapshot —
        # idle, after traffic, with memory sampling on — must be
        # json.dumps-able and come back equal through loads.
        import json

        with SpannerService(
            workers=2, chunk_size=3, worker_memory_limit=1 << 30
        ) as service:
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            idle = service.health()
            assert json.loads(json.dumps(idle)) == idle
            assert service.submit(qid, DOCS).result() == word_serial
            busy = service.health()
            assert json.loads(json.dumps(busy)) == busy
            rss = busy["resources"]["worker_rss_bytes"]
            assert all(isinstance(k, str) for k in rss)

    def test_health_reflects_crash_restarts(self, word_serial):
        service = SpannerService(workers=2, chunk_size=2)
        try:
            service.start()
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            future = service.submit(qid, DOCS)
            os.kill(service._workers[0].process.pid, signal.SIGKILL)
            future.result(timeout=120)
            health = service.health()
            assert health["counters"]["workers_crashed"] == 1
            assert health["counters"]["worker_restarts"] == 1
            # The replacement keeps the fleet at strength.
            assert len(health["workers"]) == 2
        finally:
            service.close()


class TestAsyncFrontend:
    def test_extract_matches_serial(self, word_serial, digit_serial):
        async def run():
            with SpannerService(workers=2, chunk_size=3) as service:
                q1 = service.register(CompiledSpanner(WORD_FORMULA))
                q2 = service.register(CompiledSpanner(DIGIT_FORMULA))
                one, two = await asyncio.gather(
                    service.extract(q1, DOCS), service.extract(q2, DOCS)
                )
                return one, two

        one, two = asyncio.run(run())
        assert canonical(one) == canonical(word_serial)
        assert canonical(two) == canonical(digit_serial)

    def test_gather_mixes_futures_and_coroutines(self, word_serial):
        async def run():
            with SpannerService(workers=2, chunk_size=4) as service:
                qid = service.register(CompiledSpanner(WORD_FORMULA))
                return await service.gather(
                    service.submit(qid, DOCS[:4]),
                    service.extract(qid, DOCS[4:8]),
                )

        first, second = asyncio.run(run())
        assert first == word_serial[:4]
        assert second == word_serial[4:8]

    def test_cancellation_leaves_fleet_serviceable(self, word_serial):
        async def run():
            with SpannerService(workers=2, chunk_size=1) as service:
                qid = service.register(CompiledSpanner(WORD_FORMULA))
                # Enough work that the cancel lands while chunks are
                # still in flight (64 single-doc chunks on 2 workers).
                task = asyncio.create_task(service.extract(qid, DOCS * 2))
                await asyncio.sleep(0.01)
                cancelled = task.cancel()
                if cancelled:
                    with pytest.raises(asyncio.CancelledError):
                        await task
                else:  # the batch won the race and already resolved
                    assert await task == word_serial * 2
                # The fleet absorbed the abandoned work and still serves.
                return await service.extract(qid, DOCS[:6])

        assert asyncio.run(run()) == word_serial[:6]

    def test_extract_files(self, tmp_path, word_serial):
        paths = []
        for i, doc in enumerate(DOCS[:8]):
            path = tmp_path / f"doc{i}.txt"
            path.write_text(doc, encoding="utf-8")
            paths.append(str(path))

        async def run():
            with SpannerService(workers=2, chunk_size=3) as service:
                qid = service.register(CompiledSpanner(WORD_FORMULA))
                return await service.extract_files(qid, paths)

        assert asyncio.run(run()) == word_serial[:8]


def dev_shm_segments() -> set[str]:
    import glob

    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return set()
    return {os.path.basename(p) for p in glob.glob("/dev/shm/sjdoc-*")}


def _require_shm():
    from repro.runtime import shm_available

    if not shm_available():
        pytest.skip("POSIX shared memory unavailable")


class TestSharedMemoryTransport:
    """The fleet over shm transport: parity, crash cleanup, recycling."""

    def test_forced_shm_byte_identical(self, word_serial, digit_serial):
        _require_shm()
        with SpannerService(
            workers=2, chunk_size=3, transport="shm"
        ) as service:
            q_word = service.register(CompiledSpanner(WORD_FORMULA))
            q_digit = service.register(CompiledSpanner(DIGIT_FORMULA))
            f_word = service.submit(q_word, DOCS)
            f_digit = service.submit(q_digit, DOCS)
            assert canonical(f_word.result()) == canonical(word_serial)
            assert canonical(f_digit.result()) == canonical(digit_serial)
        assert not dev_shm_segments()

    def test_forced_pipe_byte_identical(self, word_serial):
        with SpannerService(
            workers=2, chunk_size=3, transport="pipe"
        ) as service:
            assert service._doc_transport is None
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            assert canonical(service.submit(qid, DOCS).result()) == canonical(
                word_serial
            )

    def test_killed_worker_leaves_no_orphaned_segments(self, word_serial):
        """SIGKILL a worker holding shm-backed tasks: the batch still
        resolves exactly (re-dispatch re-uses the same segments) and
        nothing is left in /dev/shm after close."""
        _require_shm()
        service = SpannerService(workers=2, chunk_size=2, transport="shm")
        try:
            service.start()
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            future = service.submit(qid, DOCS)
            os.kill(service._workers[0].process.pid, signal.SIGKILL)
            assert canonical(future.result(timeout=120)) == canonical(
                word_serial
            )
            assert service.workers_crashed == 1
        finally:
            service.close()
        assert not dev_shm_segments()

    def test_recycling_fleet_leaves_no_orphaned_segments(self, word_serial):
        _require_shm()
        with SpannerService(
            workers=2, chunk_size=2, transport="shm", max_tasks_per_worker=1
        ) as service:
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            out = service.submit(qid, DOCS).result()
            assert canonical(out) == canonical(word_serial)
            assert service.workers_recycled > 0
        assert not dev_shm_segments()

    def test_terminate_with_shm_in_flight_sweeps_segments(self):
        _require_shm()
        service = SpannerService(workers=2, chunk_size=1, transport="shm")
        service.start()
        qid = service.register(CompiledSpanner(WORD_FORMULA))
        futures = [service.submit_chunk(qid, ["a b c"]) for _ in range(32)]
        service.close(drain=False)  # cancel outstanding, terminate fleet
        assert all(f.done() for f in futures)
        assert not dev_shm_segments()

    def test_equality_query_over_shm(self):
        _require_shm()
        eq_engine, eq_docs = equality_engine()
        eq_serial = list(eq_engine.evaluate_many(eq_docs))
        with SpannerService(
            workers=2, chunk_size=3, transport="shm"
        ) as service:
            qid = service.register(eq_engine)
            out = service.submit(qid, eq_docs).result()
            assert canonical(out) == canonical(eq_serial)
        assert not dev_shm_segments()

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError):
            SpannerService(workers=1, transport="smoke-signals")


class TestBackpressure:
    def test_max_in_flight_bounds_dispatch(self, word_serial):
        """With max_in_flight, results stay correct and the semaphore
        is recycled task by task (no leak: a second batch still runs)."""
        with SpannerService(
            workers=2, chunk_size=2, max_in_flight=2
        ) as service:
            qid = service.register(CompiledSpanner(WORD_FORMULA))
            assert service.submit(qid, DOCS).result() == word_serial
            assert service.submit(qid, DOCS).result() == word_serial
