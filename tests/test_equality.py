"""Tests for runtime string-equality automata (Theorem 5.4)."""

import pytest

from repro.enumeration import enumerate_tuples
from repro.errors import SchemaError
from repro.spans import Span
from repro.vset import compile_regex, equality_automaton, is_vset_functional, join
from repro.vset.equality import equal_span_choices, equality_relation_rows


class TestEqualSpanChoices:
    def test_pairs_on_small_string(self):
        s = "ab"
        pairs = list(equal_span_choices(s, 2))
        for left, right in pairs:
            assert left.extract(s) == right.extract(s)

    def test_counts_unary(self):
        # On "aa": lengths 0,1,2 give 3,2,1 positions; pairs within each
        # bucket: 9 + 4 + 1 = 14.
        assert len(list(equal_span_choices("aa", 2))) == 14

    def test_distinct_substrings_never_paired(self):
        s = "ab"
        pairs = list(equal_span_choices(s, 2))
        assert (Span(1, 2), Span(2, 3)) not in pairs

    def test_triples(self):
        s = "aa"
        triples = list(equal_span_choices(s, 3))
        for a, b, c in triples:
            assert a.extract(s) == b.extract(s) == c.extract(s)

    def test_relation_rows_schema(self):
        rows = list(equality_relation_rows("ab", ("x", "y")))
        assert all(set(row) == {"x", "y"} for row in rows)


class TestEqualityAutomaton:
    def test_semantics_on_its_string(self, check_against_oracle):
        s = "aba"
        automaton = equality_automaton(s, ("x", "y"))
        got = check_against_oracle(automaton, s)
        for mu in got:
            assert mu["x"].extract(s) == mu["y"].extract(s)
        # Completeness: every equal pair is present.
        assert len(got) == len(list(equal_span_choices(s, 2)))

    def test_empty_on_other_strings(self):
        automaton = equality_automaton("ab", ("x", "y"))
        assert list(enumerate_tuples(automaton, "ba")) == []
        assert list(enumerate_tuples(automaton, "abab")) == []

    def test_functional(self):
        automaton = equality_automaton("ab", ("x", "y"))
        assert is_vset_functional(automaton)

    def test_empty_string(self):
        automaton = equality_automaton("", ("x", "y"))
        tuples = list(enumerate_tuples(automaton, ""))
        assert tuples and all(
            mu["x"] == mu["y"] == Span(1, 1) for mu in tuples
        )

    def test_three_way_group(self, check_against_oracle):
        s = "aa"
        automaton = equality_automaton(s, ("x", "y", "z"))
        got = check_against_oracle(automaton, s)
        for mu in got:
            assert (
                mu["x"].extract(s)
                == mu["y"].extract(s)
                == mu["z"].extract(s)
            )

    def test_single_variable_rejected(self):
        with pytest.raises(SchemaError):
            equality_automaton("ab", ("x",))

    def test_duplicate_variables_rejected(self):
        with pytest.raises(SchemaError):
            equality_automaton("ab", ("x", "x"))

    def test_join_with_spanner_implements_selection(self):
        """[[ζ=_{x,y} A]](s) = [[A ⋈ A_eq]](s) — the Theorem 5.4 identity."""
        s = "abab"
        automaton = compile_regex(".*x{a(b|ε)}.*y{[ab]+}.*")
        base = automaton.evaluate(s)
        selected = base.select_string_equality(s, ["x", "y"])
        joined = join(automaton, equality_automaton(s, ("x", "y")))
        got = set(enumerate_tuples(joined, s))
        assert got == set(selected)
