"""Tests for the hardness reductions (Theorems 3.1, 3.2, 5.2)."""

import pytest

from repro.queries import CanonicalEvaluator, CompiledEvaluator
from repro.reductions import (
    CliqueEqualityReduction,
    CliqueReduction,
    SatReduction,
)
from repro.util.graphs import Graph
from repro.util.sat import (
    Literal,
    ThreeCNF,
    brute_force_satisfiable,
    dpll_satisfiable,
)


class TestSatSolvers:
    def test_solvers_agree_on_random_instances(self):
        for seed in range(10):
            formula = ThreeCNF.random(5, 10, seed=seed)
            bf, bf_witness = brute_force_satisfiable(formula)
            dp, dp_witness = dpll_satisfiable(formula)
            assert bf == dp
            if bf:
                assert formula.evaluate(bf_witness)

    def test_unsatisfiable_core(self):
        # (x ∨ x ∨ x) ∧ (¬x ∨ ¬x ∨ ¬x) is unsatisfiable... with three
        # distinct variables required, use the standard 8-clause core.
        lits = [
            [(0, p0), (1, p1), (2, p2)]
            for p0 in (True, False)
            for p1 in (True, False)
            for p2 in (True, False)
        ]
        clauses = tuple(
            tuple(Literal(v, p) for v, p in clause) for clause in lits
        )
        formula = ThreeCNF(3, clauses)
        assert not brute_force_satisfiable(formula)[0]
        assert not dpll_satisfiable(formula)[0]

    def test_random_rejects_tiny_variable_count(self):
        with pytest.raises(ValueError):
            ThreeCNF.random(2, 1)

    def test_clause_arity_validated(self):
        with pytest.raises(ValueError):
            ThreeCNF(3, ((Literal(0, True),),))


class TestSatReduction:
    def test_string_is_single_character(self):
        red = SatReduction.build(ThreeCNF.random(4, 4, seed=1))
        assert red.string == "a"

    def test_atom_sizes_bounded(self):
        # Theorem 3.1: hardness with bounded-size regex formulas — the
        # atom size depends only on the clause arity (3), never on the
        # formula size: 7 branches of at most ~10 nodes plus glue.
        red_small = SatReduction.build(ThreeCNF.random(4, 3, seed=2))
        red_large = SatReduction.build(ThreeCNF.random(40, 80, seed=2))
        size_cap = max(
            atom.formula.size() for atom in red_small.query.regex_atoms
        )
        assert all(
            atom.formula.size() <= size_cap + 4
            for atom in red_large.query.regex_atoms
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_reduction_correct(self, seed):
        formula = ThreeCNF.random(4, 6, seed=seed)
        truth, _ = brute_force_satisfiable(formula)
        red = SatReduction.build(formula)
        assert CanonicalEvaluator().evaluate_boolean(red.query, red.string) == truth
        assert CompiledEvaluator().evaluate_boolean(red.query, red.string) == truth

    def test_witness_decoding(self):
        formula = ThreeCNF.random(4, 5, seed=7)
        truth, _ = brute_force_satisfiable(formula)
        if not truth:
            pytest.skip("instance unsatisfiable for this seed")
        red = SatReduction.build(formula, boolean=False)
        rel = CanonicalEvaluator().evaluate(red.query, red.string)
        assert rel
        assignment = red.decode(next(iter(rel)))
        assert red.check_decoded(assignment)


class TestCliqueReduction:
    @pytest.fixture
    def graph(self):
        return Graph.from_edges(
            5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (1, 3)]
        )

    def test_string_encoding_sorted(self, graph):
        red = CliqueReduction.build(graph, 2)
        assert red.string.startswith("<")
        assert red.string.count("<") == len(graph.edges)

    def test_query_is_gamma_acyclic(self, graph):
        for k in (2, 3):
            red = CliqueReduction.build(graph, k)
            assert red.query.is_gamma_acyclic()

    def test_atom_count_linear_in_k(self, graph):
        red = CliqueReduction.build(graph, 3)
        assert red.query.atom_count == 1 + 3  # gamma + k deltas

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_reduction_correct(self, graph, k):
        red = CliqueReduction.build(graph, k)
        got = CanonicalEvaluator().evaluate_boolean(red.query, red.string)
        assert got == graph.has_clique(k)

    def test_clique_decoding(self, graph):
        red = CliqueReduction.build(graph, 3, boolean=False)
        rel = CanonicalEvaluator().evaluate(red.query, red.string)
        decoded = {tuple(sorted(red.decode(t))) for t in rel}
        truth = {tuple(sorted(c)) for c in graph.cliques_of_size(3)}
        assert decoded == truth

    def test_triangle_free_graph(self):
        # A 4-cycle has no triangle.
        square = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        red = CliqueReduction.build(square, 3)
        assert not CanonicalEvaluator().evaluate_boolean(red.query, red.string)

    def test_rejects_k_below_two(self, graph):
        with pytest.raises(ValueError):
            CliqueReduction.build(graph, 1)


class TestCliqueEqualityReduction:
    def test_single_regex_atom(self):
        g = Graph.complete(4)
        red = CliqueEqualityReduction.build(g, 3)
        assert red.query.atom_count == 1
        assert red.query.equality_count == 3

    def test_query_size_independent_of_graph(self):
        # The W[1] point: |q| depends only on k.
        small = CliqueEqualityReduction.build(Graph.complete(4), 3)
        large = CliqueEqualityReduction.build(
            Graph.random(10, 0.5, seed=3), 3
        )
        size_small = small.query.regex_atoms[0].formula.size()
        size_large = large.query.regex_atoms[0].formula.size()
        assert size_small == size_large
        assert small.query.equality_count == large.query.equality_count

    def test_reduction_correct_positive(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3)])
        red = CliqueEqualityReduction.build(g, 3)
        got = CanonicalEvaluator().evaluate_boolean(red.query, red.string)
        assert got == g.has_clique(3) == True  # noqa: E712

    def test_reduction_correct_negative(self):
        square = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        red = CliqueEqualityReduction.build(square, 3)
        got = CanonicalEvaluator().evaluate_boolean(red.query, red.string)
        assert got is False


class TestGraphUtility:
    def test_random_graph_reproducible(self):
        assert Graph.random(6, 0.5, seed=1).edges == Graph.random(6, 0.5, seed=1).edges

    def test_complete_graph(self):
        g = Graph.complete(4)
        assert len(g.edges) == 6
        assert g.has_clique(4)

    def test_planted_clique(self):
        g = Graph.with_planted_clique(8, 0.1, 4, seed=5)
        assert g.is_clique(range(4))

    def test_edge_normalization(self):
        g = Graph.from_edges(3, [(2, 0), (0, 2)])
        assert g.edges == frozenset({(0, 2)})
        assert g.has_edge(2, 0)

    def test_bad_edge_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, frozenset({(0, 3)}))

    def test_cliques_of_size(self):
        g = Graph.complete(4)
        assert len(list(g.cliques_of_size(3))) == 4
