"""Tests for the built-in extractors and the synthetic text generators."""

import pytest

from repro.extractors import (
    address_spanner,
    capitalized_spanner,
    dictionary_spanner,
    email_spanner,
    number_spanner,
    paper_email_spanner,
    sentence_spanner,
    subspan_spanner,
    token_spanner,
    word_spanner,
)
from repro.regex import is_functional
from repro.text import email_text, log_lines, repeats_text, sentences, unary_text
from repro.vset import compile_regex


def _extract(formula, s, var):
    return sorted(
        mu[var].extract(s) for mu in compile_regex(formula).evaluate(s)
    )


class TestExtractorsAreFunctional:
    @pytest.mark.parametrize(
        "formula",
        [
            sentence_spanner(),
            token_spanner("police"),
            dictionary_spanner(["a", "bb"]),
            subspan_spanner(),
            email_spanner(),
            paper_email_spanner(),
            address_spanner(),
            number_spanner(),
            capitalized_spanner(),
            word_spanner(),
        ],
    )
    def test_functional(self, formula):
        assert is_functional(formula)


class TestSentences:
    def test_splits_two_sentences(self):
        s = "the dog ran. the cat sat!"
        got = _extract(sentence_spanner(), s, "x")
        assert got == sorted(["the dog ran.", "the cat sat!"])

    def test_single_sentence(self):
        s = "hello there."
        assert _extract(sentence_spanner(), s, "x") == ["hello there."]


class TestTokens:
    def test_token_boundaries(self):
        s = "police policeman police."
        got = _extract(token_spanner("police"), s, "x")
        # 'policeman' must not match.
        assert got == ["police", "police"]

    def test_token_at_string_edges(self):
        assert _extract(token_spanner("hi"), "hi", "x") == ["hi"]
        assert _extract(token_spanner("hi"), "hi you", "x") == ["hi"]
        assert _extract(token_spanner("hi"), "say hi", "x") == ["hi"]

    def test_token_validation(self):
        with pytest.raises(ValueError):
            token_spanner("two words")

    def test_dictionary(self):
        s = "ab ba ab"
        got = _extract(dictionary_spanner(["ab", "ba"]), s, "x")
        assert got == ["ab", "ab", "ba"]

    def test_dictionary_validation(self):
        with pytest.raises(ValueError):
            dictionary_spanner([])
        with pytest.raises(ValueError):
            dictionary_spanner(["ok", "no no"])


class TestSubspan:
    def test_subspan_pairs(self):
        # On "ab": outer spans containing each inner span.
        s = "ab"
        rel = compile_regex(subspan_spanner("y", "x")).evaluate(s)
        for mu in rel:
            assert mu["x"].contains(mu["y"])
        # Every (outer, inner) nested pair appears: count manually.
        from repro.spans import Span

        expected = sum(
            1
            for outer in Span.all_spans(s)
            for inner in Span.all_spans(s)
            if outer.contains(inner)
        )
        assert len(rel) == expected


class TestEmail:
    def test_paper_email_requires_spaces(self):
        s = "mail me at ada@lovelace.org now"
        rel = compile_regex(paper_email_spanner()).evaluate(s)
        strings = {mu["xmail"].extract(s) for mu in rel}
        assert "ada@lovelace.org" in strings

    def test_email_spanner_parts(self):
        s = "ada@example.com"
        rel = compile_regex(email_spanner()).evaluate(s)
        assert len(rel) == 1
        mu = next(iter(rel))
        assert mu["user"].extract(s) == "ada"
        assert mu["domain"].extract(s) == "example.com"

    def test_email_rejects_missing_tld(self):
        s = "ada@example"
        assert len(compile_regex(email_spanner()).evaluate(s)) == 0


class TestAddressNumbersWords:
    def test_address(self):
        s = "see Main Street 12, 1000 Springfield, Belgium today"
        rel = compile_regex(address_spanner()).evaluate(s)
        pairs = {
            (mu["y"].extract(s), mu["z"].extract(s)) for mu in rel
        }
        assert ("Main Street 12, 1000 Springfield, Belgium", "Belgium") in pairs

    def test_numbers(self):
        assert _extract(number_spanner(), "a12b345", "x") == ["12", "345"]

    def test_capitalized(self):
        got = _extract(capitalized_spanner(), "Ada met Alan", "x")
        assert got == ["Ada", "Alan"]

    def test_words(self):
        assert _extract(word_spanner(), "ab CD ef", "x") == ["ab", "ef"]


class TestTextGenerators:
    def test_sentences_deterministic(self):
        assert sentences(5, seed=3) == sentences(5, seed=3)
        assert sentences(5, seed=3) != sentences(5, seed=4)

    def test_sentences_planting(self):
        text = sentences(6, seed=1, plant_addresses=2, plant_keyword="police")
        assert "police" in text
        assert ", " in text  # address commas

    def test_planted_extraction_end_to_end(self):
        text = sentences(4, seed=2, plant_addresses=1)
        rel = compile_regex(address_spanner()).evaluate(text)
        assert len(rel) >= 1

    def test_log_lines_shape(self):
        text = log_lines(10, seed=0)
        lines = text.split("\n")
        assert len(lines) == 10
        assert all("code=" in line for line in lines)

    def test_email_text(self):
        text = email_text(50, seed=0, email_rate=0.5)
        assert "@" in text

    def test_repeats_text_plants_repeat(self):
        text = repeats_text(20, seed=1, plant="aba")
        assert text.count("aba") >= 2

    def test_unary(self):
        assert unary_text(4) == "aaaa"
        with pytest.raises(ValueError):
            unary_text(3, "ab")
