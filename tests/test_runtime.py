"""Tests for the compiled-spanner runtime (Theorem 3.3, amortized).

The contract under test: a :class:`CompiledSpanner` — which hoists all
string-independent preprocessing into shared
:class:`~repro.runtime.tables.AutomatonTables` — produces **exactly**
the tuple sequence a cold :class:`SpannerEvaluator` produces, in the
same radix order, on every input; and the caches that make it fast
(the character-indexed burst table, the weak per-automaton table cache,
the structural query-fingerprint caches) behave as caches, not as
semantic changes.
"""

from __future__ import annotations

import gc

import pytest
from hypothesis import given, settings, strategies as st

from repro.enumeration import SpannerEvaluator
from repro.errors import NotFunctionalError
from repro.oracle import oracle_evaluate
from repro.queries import CompiledEvaluator, RegexCQ
from repro.queries.compiled import query_fingerprint
from repro.runtime import AutomatonTables, CompiledSpanner, tables_for
from repro.runtime.tables import PROBE_ALPHABET
from repro.runtime.cache import LRUCache
from repro.runtime.tables import _CACHE
from repro.spans import Span, SpanTuple
from repro.vset import VSetAutomaton, compile_regex, join


def cold_sequence(automaton: VSetAutomaton, s: str) -> list[SpanTuple]:
    return list(SpannerEvaluator(automaton, s))


class TestCompiledMatchesCold:
    """Identical tuple *sequences* (radix order preserved), not just sets."""

    def test_predicate_labelled_automaton(self):
        automaton = compile_regex("(ε|.*[^a-z])x{[a-z]+}([^a-z].*|ε)")
        spanner = CompiledSpanner(automaton)
        for s in ("say hi ho", "a1bc2", "", "UPPER lower", "zzz"):
            assert list(spanner.stream(s)) == cold_sequence(automaton, s)

    def test_marker_set_automaton(self):
        # Joins label transitions with marker *sets* (Lemma 3.10's
        # generalized model); the runtime must handle them identically.
        joined = join(
            compile_regex(".*x{a+}.*"), compile_regex(".*y{b+}.*")
        )
        spanner = CompiledSpanner(joined)
        for s in ("abab", "aabb", "ba", "aaa"):
            assert list(spanner.stream(s)) == cold_sequence(joined, s)

    def test_empty_language_automaton(self):
        empty = compile_regex("∅", require_functional=False)
        automaton = VSetAutomaton(empty.nfa, set())
        spanner = CompiledSpanner(automaton)
        assert spanner.is_empty("abc")
        assert list(spanner.stream("abc")) == []
        assert spanner.count("abc") == 0

    def test_empty_string_document(self):
        automaton = compile_regex("x{}")
        spanner = CompiledSpanner(automaton)
        assert list(spanner.stream("")) == [SpanTuple({"x": Span(1, 1)})]

    def test_boolean_spanner(self):
        automaton = compile_regex(".*ab.*")
        spanner = CompiledSpanner(automaton)
        assert list(spanner.stream("zabz")) == [SpanTuple({})]
        assert list(spanner.stream("zz")) == []

    def test_accepts_concrete_syntax_and_formula(self):
        from repro.regex import parse

        for source in ("a*x{a*}a*", parse("a*x{a*}a*")):
            spanner = CompiledSpanner(source)
            assert spanner.count("aa") == 6

    def test_non_functional_rejected_at_compile_time(self):
        bad = compile_regex("x{a}x{b}", require_functional=False)
        with pytest.raises(NotFunctionalError):
            CompiledSpanner(bad)

    def test_unclosed_variable_rejected(self):
        from repro.alphabet import open_marker
        from repro.automata.nfa import NFA

        nfa = NFA()
        a, b = nfa.add_state(), nfa.add_state()
        nfa.set_initial(a)
        nfa.add_final(b)
        nfa.add_transition(a, open_marker("x"), b)
        with pytest.raises(NotFunctionalError):
            CompiledSpanner(VSetAutomaton(nfa, {"x"}))


@settings(max_examples=60, deadline=None)
@given(
    formula=st.sampled_from(
        ["a*x{a*}a*", ".*x{(a|b)+}.*", ".*x{a+}y{b*a}.*", "x{(a|ab)*}b*"]
    ),
    s=st.text(alphabet="ab", max_size=6),
)
def test_property_compiled_matches_oracle(formula, s):
    """The compiled runtime satisfies the paper's definition verbatim."""
    automaton = compile_regex(formula)
    spanner = CompiledSpanner(automaton)
    got = list(spanner.stream(s))
    assert len(got) == len(set(got))  # no duplicates
    assert set(got) == oracle_evaluate(automaton, s)
    assert got == cold_sequence(automaton, s)  # radix order preserved


class TestBatchAPIs:
    def test_evaluate_many_matches_per_document(self):
        automaton = compile_regex(".*x{[0-9]+}.*")
        docs = ["a1b22", "nope", "", "333", "x9"]
        spanner = CompiledSpanner(automaton)
        batched = list(spanner.evaluate_many(docs))
        assert batched == [cold_sequence(automaton, d) for d in docs]

    def test_evaluate_many_is_lazy(self):
        spanner = CompiledSpanner("a*x{a*}a*")

        def docs():
            yield "aa"
            raise RuntimeError("second document must not be read eagerly")

        stream = spanner.evaluate_many(docs())
        assert len(next(stream)) == 6
        with pytest.raises(RuntimeError):
            next(stream)

    def test_count_and_is_empty(self):
        spanner = CompiledSpanner("a*x{a*}a*")
        assert spanner.count("aa") == 6
        assert spanner.count("aa", cap=3) == 3
        assert not spanner.is_empty("aa")
        spanner_b = CompiledSpanner("x{b}")
        assert spanner_b.is_empty("aaa")
        # x{b} spans the *whole* document, so only "b" itself matches.
        assert list(spanner_b.count_many(["b", "bb", "a"])) == [1, 0, 0]

    def test_evaluate_materializes_relation(self):
        spanner = CompiledSpanner("a*x{a*}a*")
        relation = spanner.evaluate("a")
        assert len(relation) == 3


class TestBurstTable:
    def test_rows_grow_per_distinct_character(self):
        # Wildcard automata prebuild the ASCII letter/digit *probe*
        # rows at construction; characters beyond the probe still grow
        # the table lazily, one row per distinct character.
        spanner = CompiledSpanner(".*x{[ab]+}.*")
        base = spanner.tables.distinct_characters_seen
        assert base == len(PROBE_ALPHABET)
        assert not spanner.tables.burst_complete
        list(spanner.stream("abab"))  # probe characters: no new rows
        assert spanner.tables.distinct_characters_seen == base
        list(spanner.stream("ab!?"))  # beyond the probe: lazy rows
        assert spanner.tables.distinct_characters_seen == base + 2
        list(spanner.stream("a!b?"))  # no new characters
        assert spanner.tables.distinct_characters_seen == base + 2

    def test_unseen_character_still_correct(self):
        automaton = compile_regex(".*x{[^ ]+} .*")
        spanner = CompiledSpanner(automaton)
        list(spanner.stream("ab cd"))
        s = "zq!? end"
        assert list(spanner.stream(s)) == cold_sequence(automaton, s)


class TestSharedTables:
    def test_tables_are_shared_per_automaton_object(self):
        automaton = compile_regex("a*x{a*}a*")
        assert tables_for(automaton) is tables_for(automaton)
        assert CompiledSpanner(automaton).tables is tables_for(automaton)

    def test_join_reuses_operand_views(self):
        a1 = compile_regex(".*x{a+}.*")
        a2 = compile_regex(".*y{b+}.*")
        first = join(a1, a2)
        view_key = ("join-operand", ())
        assert view_key in tables_for(a1).views
        cached_view = tables_for(a1).views[view_key]
        second = join(a1, a2)
        assert tables_for(a1).views[view_key] is cached_view
        s = "aabb"
        assert cold_sequence(first, s) == cold_sequence(second, s)

    def test_cache_entries_die_with_their_automaton(self):
        automaton = compile_regex("a*x{a*}a*")
        tables_for(automaton)
        before = len(_CACHE)
        del automaton
        gc.collect()
        assert len(_CACHE) < before

    def test_cold_evaluator_does_not_populate_the_shared_cache(self):
        # Theorem 3.3's cold two-phase contract: a plain SpannerEvaluator
        # pays its own preprocessing and leaves no global state behind.
        automaton = compile_regex("a*x{a*}a*")
        SpannerEvaluator(automaton, "aa")
        assert _CACHE.get(automaton) is None

    def test_compact_and_trim_variants_agree(self):
        automaton = compile_regex("(ε|.* )x{[a-z]+}@y{[a-z]+}( .*|ε)")
        s = "mail me at ada@lovelace now"
        compact = AutomatonTables(automaton, compact=True)
        trim_only = AutomatonTables(automaton, compact=False)
        got_compact = list(
            SpannerEvaluator(automaton, s, tables=compact)
        )
        got_trim = list(SpannerEvaluator(automaton, s, tables=trim_only))
        assert got_compact == got_trim


class TestStaticCacheFingerprint:
    """Regression: the compile cache must key structurally, not by id()."""

    def test_repeated_cq_hits_the_cache(self):
        # A RegexCQ is wrapped in a fresh RegexUCQ on every call, so the
        # old id()-keyed cache could never hit (and could collide after
        # garbage collection); the structural key must hit every time.
        evaluator = CompiledEvaluator(cache=LRUCache(16))
        query = RegexCQ(["x"], [".*x{a+}.*"])
        first = evaluator.compile_static(query)
        second = evaluator.compile_static(query)
        assert first is second
        assert len(evaluator.cache) == 1
        assert evaluator.cache.stats().hits == 1

    def test_structurally_equal_queries_share_one_entry(self):
        evaluator = CompiledEvaluator(cache=LRUCache(16))
        q1 = RegexCQ(["x"], [".*x{a+}.*"])
        q2 = RegexCQ(["x"], [".*x{a+}.*"])
        assert evaluator.compile_static(q1) is evaluator.compile_static(q2)

    def test_different_queries_never_collide(self):
        # With id() keying, deleting q1 could hand its id to q2 and
        # serve q1's automata for q2's formulas.  Structural keys make
        # the collision impossible regardless of object lifetimes.
        evaluator = CompiledEvaluator(cache=LRUCache(16))
        q1 = RegexCQ(["x"], [".*x{a+}.*"])
        compiled_1 = evaluator.compile_static(q1)
        del q1
        gc.collect()
        q2 = RegexCQ(["x"], [".*x{b+}.*"])
        compiled_2 = evaluator.compile_static(q2)
        assert compiled_1 is not compiled_2
        static_keys = [
            k for k in evaluator.cache.keys() if k[0] == "static-fold"
        ]
        assert len(static_keys) == 2
        relation = evaluator.evaluate(q2, "abbb")
        assert {mu["x"] for mu in relation} == {
            Span(2, 3), Span(2, 4), Span(2, 5),
            Span(3, 4), Span(3, 5), Span(4, 5),
        }

    def test_default_cache_is_process_wide(self):
        # Two independent evaluators share the module-level compilation
        # cache: the second gets the first's compiled spanner for free
        # (the CLI and parallel workers lean on exactly this).
        query = RegexCQ(["x"], [".*x{(a|b)b}.*"])
        first = CompiledEvaluator().runtime(query)
        second = CompiledEvaluator().runtime(
            RegexCQ(["x"], [".*x{(a|b)b}.*"])
        )
        assert first is not None and first is second

    def test_fingerprint_separates_heads_and_equalities(self):
        base = RegexCQ(["x"], [".*x{a+}.*", ".*y{a+}.*"])
        other_head = RegexCQ(["y"], [".*x{a+}.*", ".*y{a+}.*"])
        with_eq = RegexCQ(
            ["x"], [".*x{a+}.*", ".*y{a+}.*"], equalities=[("x", "y")]
        )
        assert query_fingerprint(base) != query_fingerprint(other_head)
        assert query_fingerprint(base) != query_fingerprint(with_eq)
        assert query_fingerprint(base) == query_fingerprint(
            RegexCQ(["x"], [".*x{a+}.*", ".*y{a+}.*"])
        )

    def test_equality_free_queries_reuse_a_compiled_runtime(self):
        evaluator = CompiledEvaluator()
        query = RegexCQ(["x"], [".*x{a+}.*"])
        first = evaluator.runtime(query)
        second = evaluator.runtime(RegexCQ(["x"], [".*x{a+}.*"]))
        assert first is not None and first is second
        assert {mu["x"] for mu in evaluator.evaluate(query, "baa")} == {
            Span(2, 3), Span(2, 4), Span(3, 4),
        }

    def test_equality_queries_stay_per_string(self):
        evaluator = CompiledEvaluator()
        query = RegexCQ(
            [], [".*x{a+}.*", ".*y{a+}.*"], equalities=[("x", "y")]
        )
        assert evaluator.runtime(query) is None
        assert evaluator.evaluate_boolean(query, "aa")
