"""Shared helpers for the spanner-join test suite."""

from __future__ import annotations

import pytest

from repro.enumeration import enumerate_tuples
from repro.oracle import oracle_evaluate
from repro.spans import SpanTuple
from repro.vset import VSetAutomaton, compile_regex


def engine_vs_oracle(spanner, s: str) -> set[SpanTuple]:
    """Run the production enumerator and the brute-force oracle on the
    same input and assert they agree; returns the common result."""
    automaton = (
        spanner
        if isinstance(spanner, VSetAutomaton)
        else compile_regex(spanner)
    )
    engine = set(enumerate_tuples(automaton, s))
    oracle = oracle_evaluate(automaton, s)
    assert engine == oracle, (
        f"engine/oracle mismatch on {s!r}: "
        f"engine-only={engine - oracle}, oracle-only={oracle - engine}"
    )
    return engine


@pytest.fixture
def check_against_oracle():
    return engine_vs_oracle
