"""End-to-end integration tests: the paper's motivating queries on
synthetic corpora, exercising the whole stack through the public API.

A note on the Section 1 example (query (1)): its ``alpha_sub[y, x]``
atom defines the full subspan relation — *polynomially* bounded but
quartic in ``|s|``, so materializing it on a realistic corpus is
exactly the §3.2 caveat about huge atom relations.  We exercise the
faithful formulation on a tiny corpus, and a fused formulation (the
subspan constraint folded into the sentence atom, as a practical system
would plan it) on a realistic corpus.
"""

import pytest

from repro.extractors import (
    address_spanner,
    email_spanner,
    sentence_spanner,
    subspan_spanner,
    token_spanner,
)
from repro.queries import (
    CanonicalEvaluator,
    CompiledEvaluator,
    QueryEvaluator,
    RegexAtom,
    RegexCQ,
    RegexUCQ,
)
from repro.text import email_text, log_lines, sentences

#: Fused "sentence containing an address with country z" atom: the
#: subspan join of the intro example folded into one formula.
_SEN_ADR = (
    "(ε|.*[.!?] )x{[^.!?]*y{[A-Z][a-z]+( [A-Z][a-z]+)* [0-9]+, "
    "[0-9]+ [A-Z][a-z]+, z{[A-Z][a-z]+}}[^.!?]*[.!?]}( .*|ε)"
)

#: Fused "sentence containing the token police" atom.
_SEN_POL = (
    "(ε|.*[.!?] )x{[^.!?]*w{police}[^a-zA-Z0-9][^.!?]*[.!?]}( .*|ε)"
)


class TestIntroductionExampleFaithful:
    """Query (1) verbatim — six atoms including two alpha_sub joins —
    on a deliberately tiny corpus."""

    # Deliberately short: the two alpha_sub atoms materialize
    # Theta(N^4) tuples — the §3.2 blow-up this test demonstrates.
    CORPUS = "police Rue 1, 10 Bru, Belgium!"

    def test_faithful_query(self):
        query = RegexCQ(
            ["x"],
            [
                RegexAtom.make("sen", sentence_spanner("x")),
                RegexAtom.make("adr", address_spanner("y", "z")),
                RegexAtom.make("subYX", subspan_spanner("y", "x")),
                RegexAtom.make("blg", token_spanner("Belgium", "z")),
                RegexAtom.make("plc", token_spanner("police", "w")),
                RegexAtom.make("subWX", subspan_spanner("w", "x")),
            ],
        )
        assert query.atom_count == 6
        assert query.is_acyclic()
        result = CanonicalEvaluator().evaluate(query, self.CORPUS)
        found = {mu["x"].extract(self.CORPUS) for mu in result}
        assert found == {self.CORPUS}

    def test_faithful_query_rejects_wrong_country(self):
        corpus = "police Rue 1, 10 Bru, France!"
        query = RegexCQ(
            [],
            [
                RegexAtom.make("sen", sentence_spanner("x")),
                RegexAtom.make("adr", address_spanner("y", "z")),
                RegexAtom.make("subYX", subspan_spanner("y", "x")),
                RegexAtom.make("blg", token_spanner("Belgium", "z")),
            ],
        )
        assert not CanonicalEvaluator().evaluate_boolean(query, corpus)


class TestIntroductionExampleFused:
    """The same query, planned with fused atoms, on a real corpus."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return sentences(
            8, seed=11, plant_addresses=3, plant_keyword="police"
        )

    @pytest.fixture(scope="class")
    def query(self):
        return RegexCQ(
            ["x"],
            [
                RegexAtom.make("senadr", _SEN_ADR),
                RegexAtom.make("blg", token_spanner("Belgium", "z")),
                RegexAtom.make("senpol", _SEN_POL),
            ],
        )

    def test_query_shape(self, query):
        assert query.atom_count == 3
        assert query.is_acyclic()
        assert query.variables == {"x", "y", "z", "w"}

    def test_finds_only_correct_sentences(self, corpus, query):
        result = CanonicalEvaluator().evaluate(query, corpus)
        found = {mu["x"].extract(corpus) for mu in result}
        for sentence in found:
            assert "Belgium" in sentence
            assert "police" in sentence

    def test_agreement_with_planting(self, corpus, query):
        result = CanonicalEvaluator().evaluate(query, corpus)
        found = {mu["x"].extract(corpus) for mu in result}
        raw_sentences = []
        start = 0
        for idx, ch in enumerate(corpus):
            if ch in ".!?":
                raw_sentences.append(corpus[start : idx + 1].lstrip())
                start = idx + 1
        expected = {
            s
            for s in raw_sentences
            if "Belgium" in s and "police " in s + " "
        }
        assert found == expected
        assert found  # planting guarantees at least one answer


class TestEmailExample:
    """Example 2.5's email extraction over generated text."""

    def test_extracts_all_planted_emails(self):
        corpus = email_text(60, seed=4, email_rate=0.3)
        cq = RegexCQ(
            ["user", "domain"],
            [RegexAtom.make("mail", email_spanner())],
        )
        result = QueryEvaluator().evaluate(cq, corpus)
        got = {
            (mu["user"].extract(corpus), mu["domain"].extract(corpus))
            for mu in result
        }
        expected = set()
        for token in corpus.split(" "):
            if "@" in token:
                user, domain = token.split("@")
                expected.add((user, domain))
        assert got == expected


class TestLogAnalysis:
    """Machine-log extraction: ERROR lines with their codes."""

    def test_error_codes(self):
        corpus = log_lines(10, seed=9, error_rate=0.5)
        cq = RegexCQ(
            ["code"],
            [
                RegexAtom.make(
                    "err",
                    "(ε|(.|\\n)*\\n)[0-9:]+ ERROR comp{[a-z]+}"
                    "[a-z ]*code=code{[0-9]+}(\\n(.|\\n)*|ε)",
                )
            ],
        )
        result = QueryEvaluator().evaluate(cq, corpus)
        got = {mu["code"].extract(corpus) for mu in result}
        expected = {
            line.rsplit("code=", 1)[1]
            for line in corpus.split("\n")
            if " ERROR " in line
        }
        assert got == expected


class TestStringEqualityExample:
    """The Section 5 style query: repeated substrings across positions."""

    def test_repeated_word_detection(self):
        s = "abc abc"
        cq = RegexCQ(
            ["x", "y"],
            [".*x{[a-c]+} .*", ".* y{[a-c]+}.*"],
            equalities=[("x", "y")],
        )
        canonical = CanonicalEvaluator().evaluate(cq, s)
        compiled = CompiledEvaluator().evaluate(cq, s)
        assert canonical == compiled
        strings = {
            (mu["x"].extract(s), mu["y"].extract(s)) for mu in canonical
        }
        assert ("abc", "abc") in strings
        assert all(a == b for a, b in strings)


class TestUcqAcrossExtractors:
    def test_union_of_extractor_queries(self):
        corpus = "Ada met alan. Grace wrote code!"
        ucq = RegexUCQ(
            [
                RegexCQ(
                    ["x"],
                    [
                        RegexAtom.make(
                            "cap",
                            "(ε|.*[^a-zA-Z])x{[A-Z][a-z]*}([^a-zA-Z].*|ε)",
                        )
                    ],
                ),
                RegexCQ(
                    ["x"],
                    [
                        RegexAtom.make(
                            "word", "(ε|.*[^a-z])x{code}([^a-z].*|ε)"
                        )
                    ],
                ),
            ]
        )
        result = QueryEvaluator().evaluate(ucq, corpus)
        strings = {mu["x"].extract(corpus) for mu in result}
        assert {"Ada", "Grace", "code"} <= strings
        assert "met" not in strings
