"""Parity suite for the fused equality-join runtime.

The fused path (:mod:`repro.runtime.equality`) must be *byte-level*
indistinguishable from the materializing Theorem 5.4 pipeline — same
tuples, same radix enumeration order, same rendered form — across group
arities, multiple groups per disjunct, disjunctions, empty results and
enumeration caps, serially and at any worker count.
"""

from __future__ import annotations

import pickle
from itertools import islice

import pytest

from repro.errors import SchemaError
from repro.oracle import oracle_evaluate
from repro.queries import CanonicalEvaluator, CompiledEvaluator, RegexCQ, RegexUCQ
from repro.runtime import CompiledEqualityQuery, ParallelSpanner, equality_join
from repro.runtime.cache import LRUCache
from repro.text import repeats_text
from repro.vset import compile_regex, equality_automaton, join
from repro.vset.join import join_many

STRINGS = [
    "",
    "a",
    "ab",
    "abab",
    "aabba",
    "babbab",
    repeats_text(10, seed=2),
    repeats_text(9, seed=7, alphabet="abc", plant=None),
]


def fused_evaluator() -> CompiledEvaluator:
    return CompiledEvaluator(LRUCache(64))


def materializing_evaluator() -> CompiledEvaluator:
    return CompiledEvaluator(LRUCache(64), materialize_equalities=True)


def rendered(tuples) -> bytes:
    lines = [
        " ".join(f"{v}={t[v]}" for v in sorted(t.variables)) for t in tuples
    ]
    return "\n".join(lines).encode()


class TestFusedJoinUnit:
    """equality_join against join(static, equality_automaton(...))."""

    @pytest.mark.parametrize("s", STRINGS)
    def test_binary_group_relation_parity(self, s):
        static = join(
            compile_regex(".*x{[ab]+}.*"), compile_regex(".*y{[ab]+}.*")
        )
        fused = equality_join(static, ("x", "y"), s)
        explicit = join(static, equality_automaton(s, ("x", "y")))
        assert fused.evaluate(s) == explicit.evaluate(s)

    @pytest.mark.parametrize("s", ["", "ab", "abab", "aabab"])
    def test_ternary_group_relation_parity(self, s):
        static = join_many(
            [
                compile_regex(".*x{[ab]+}.*"),
                compile_regex(".*y{[ab]+}.*"),
                compile_regex(".*z{[ab]+}.*"),
            ]
        )
        group = ("x", "y", "z")
        fused = equality_join(static, group, s)
        explicit = join(static, equality_automaton(s, group))
        assert fused.evaluate(s) == explicit.evaluate(s)

    @pytest.mark.parametrize("s", ["", "a", "ab", "aab"])
    def test_group_variable_outside_static_operand(self, s):
        # The construction must match the explicit join even when the
        # equality group introduces variables the static operand lacks
        # (CQ validation forbids this, the automaton API does not).
        static = compile_regex(".*x{a+}.*")
        fused = equality_join(static, ("x", "w"), s)
        explicit = join(static, equality_automaton(s, ("x", "w")))
        assert fused.variables == explicit.variables == {"x", "w"}
        assert fused.evaluate(s) == explicit.evaluate(s)

    @pytest.mark.parametrize("s", ["", "ab", "abba"])
    def test_oracle_agreement(self, s):
        static = join(
            compile_regex(".*x{[ab]+}.*"), compile_regex(".*y{[ab]+}.*")
        )
        fused = equality_join(static, ("x", "y"), s)
        assert set(fused.evaluate(s)) == oracle_evaluate(fused, s)

    def test_empty_language_static_operand(self):
        static = compile_regex("x{a}b")  # never matches "zz"
        fused = equality_join(static, ("x", "y"), "zz")
        assert len(fused.evaluate("zz")) == 0

    def test_rejects_degenerate_groups(self):
        static = compile_regex(".*x{a+}.*")
        with pytest.raises(SchemaError):
            equality_join(static, ("x",), "aa")
        with pytest.raises(SchemaError):
            equality_join(static, ("x", "x"), "aa")


class TestCompiledEvaluatorParity:
    """Fused vs materializing vs canonical at the query level."""

    QUERIES = {
        "binary": RegexCQ(
            ["x", "y"],
            [".*x{[ab]+}.*", ".*y{[ab]+}.*"],
            equalities=[("x", "y")],
        ),
        "merged-ternary": RegexCQ(
            ["x", "y", "z"],
            [".*x{[ab]+}.*", ".*y{[ab]+}.*", ".*z{[ab]+}.*"],
            equalities=[("x", "y"), ("y", "z")],
        ),
        "two-groups": RegexCQ(
            ["x", "y", "u", "v"],
            [".*x{[ab]+}.*", ".*y{[ab]+}.*", ".*u{a+}.*", ".*v{a+}.*"],
            equalities=[("x", "y"), ("u", "v")],
        ),
        "projected": RegexCQ(
            ["x"],
            [".*x{[ab]+}.*", ".*y{[ab]+}.*"],
            equalities=[("x", "y")],
        ),
        "boolean": RegexCQ(
            [],
            [".*x{a+}b.*", ".*y{a+}b.*"],
            equalities=[("x", "y")],
        ),
    }

    @pytest.mark.parametrize("name", sorted(QUERIES))
    @pytest.mark.parametrize("s", STRINGS)
    def test_stream_is_byte_identical(self, name, s):
        query = self.QUERIES[name]
        fused = list(fused_evaluator().stream(query, s))
        materialized = list(materializing_evaluator().stream(query, s))
        assert fused == materialized
        assert rendered(fused) == rendered(materialized)

    @pytest.mark.parametrize("name", ["binary", "merged-ternary", "two-groups"])
    @pytest.mark.parametrize("s", STRINGS[:6])
    def test_canonical_agreement(self, name, s):
        query = self.QUERIES[name]
        assert fused_evaluator().evaluate(query, s) == CanonicalEvaluator().evaluate(
            query, s
        )

    @pytest.mark.parametrize("s", STRINGS)
    def test_ucq_disjuncts(self, s):
        query = RegexUCQ(
            [
                self.QUERIES["binary"],
                RegexCQ(
                    ["x", "y"],
                    [".*x{a+}b.*", ".*y{a+}b.*"],
                    equalities=[("x", "y")],
                ),
            ]
        )
        fused = list(fused_evaluator().stream(query, s))
        materialized = list(materializing_evaluator().stream(query, s))
        assert fused == materialized

    @pytest.mark.parametrize("limit", [1, 3, 7])
    def test_limit_caps_take_the_same_prefix(self, limit):
        # Radix order depends only on the answer set, so capped
        # enumeration must agree element-for-element between the paths.
        query = self.QUERIES["binary"]
        s = repeats_text(12, seed=4)
        fused = list(islice(fused_evaluator().stream(query, s), limit))
        materialized = list(
            islice(materializing_evaluator().stream(query, s), limit)
        )
        assert fused == materialized
        assert len(fused) == limit

    def test_empty_result_queries(self):
        query = RegexCQ(
            ["x", "y"],
            ["x{ab}.*", ".*y{ba}"],
            equalities=[("x", "y")],
        )
        for s in ("", "ab", "abba", "abab"):
            fused = fused_evaluator().evaluate(query, s)
            materialized = materializing_evaluator().evaluate(query, s)
            assert fused == materialized


class TestCompiledEqualityQuery:
    QUERY = RegexCQ(
        ["x", "y"],
        [".*x{[ab]+}.*", ".*y{[ab]+}.*"],
        equalities=[("x", "y")],
    )

    def engine(self) -> CompiledEqualityQuery:
        engine = fused_evaluator().equality_runtime(self.QUERY)
        assert engine is not None
        return engine

    def test_equality_free_queries_have_no_engine(self):
        query = RegexCQ(["x"], [".*x{a+}.*"])
        assert fused_evaluator().equality_runtime(query) is None

    def test_matches_per_document_compilation(self):
        engine = self.engine()
        evaluator = materializing_evaluator()
        docs = [repeats_text(8, seed=i) for i in range(6)]
        for doc in docs:
            assert list(engine.stream(doc)) == list(
                evaluator.stream(self.QUERY, doc)
            )
        batched = list(engine.evaluate_many(docs))
        assert batched == [list(engine.stream(d)) for d in docs]

    def test_count_and_emptiness(self):
        engine = self.engine()
        doc = repeats_text(8, seed=3)
        tuples = list(engine.stream(doc))
        assert engine.count(doc) == len(tuples)
        assert engine.count(doc, cap=2) == min(2, len(tuples))
        assert engine.is_empty(doc) == (not tuples)

    def test_pickle_round_trip(self):
        engine = self.engine()
        doc = repeats_text(9, seed=5)
        clone = pickle.loads(
            pickle.dumps(engine, protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert list(clone.stream(doc)) == list(engine.stream(doc))
        assert clone.head == engine.head

    def test_two_worker_shard_is_byte_identical(self):
        engine = self.engine()
        docs = [repeats_text(10, seed=20 + i) for i in range(12)]
        serial = list(engine.evaluate_many(docs))
        with ParallelSpanner(engine, workers=2, chunk_size=3) as pool:
            sharded = list(pool.evaluate_many(docs))
        assert sharded == serial
        assert [rendered(d) for d in sharded] == [rendered(d) for d in serial]

    def test_worker_limit_matches_serial_prefixes(self):
        engine = self.engine()
        docs = [repeats_text(10, seed=30 + i) for i in range(8)]
        serial = list(engine.evaluate_many(docs))
        with ParallelSpanner(engine, workers=2, chunk_size=2) as pool:
            capped = list(pool.evaluate_many(docs, limit=4))
        assert capped == [doc[:4] for doc in serial]
