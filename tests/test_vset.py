"""Tests for the vset-automaton model and variable configurations."""

import pytest

from repro.alphabet import (
    EPSILON,
    VariableMarker,
    char_pred,
    close_marker,
    open_marker,
)
from repro.automata.nfa import NFA
from repro.errors import NotFunctionalError, SchemaError
from repro.oracle import oracle_evaluate
from repro.vset import (
    CLOSED,
    OPEN,
    WAITING,
    VariableConfiguration,
    VSetAutomaton,
    compile_regex,
    compute_state_configurations,
)


class TestVariableConfiguration:
    def test_initial_and_final(self):
        init = VariableConfiguration.initial(["x", "y"])
        assert init.is_all_waiting
        final = VariableConfiguration.final(["x", "y"])
        assert final.is_all_closed

    def test_of_unknown_raises(self):
        with pytest.raises(KeyError):
            VariableConfiguration.initial(["x"]).of("z")

    def test_apply_open_then_close(self):
        c = VariableConfiguration.initial(["x"])
        c = c.apply_marker(open_marker("x"))
        assert c.of("x") == OPEN
        c = c.apply_marker(close_marker("x"))
        assert c.of("x") == CLOSED

    def test_double_open_rejected(self):
        c = VariableConfiguration.initial(["x"]).apply_marker(open_marker("x"))
        with pytest.raises(NotFunctionalError):
            c.apply_marker(open_marker("x"))

    def test_close_unopened_rejected(self):
        with pytest.raises(NotFunctionalError):
            VariableConfiguration.initial(["x"]).apply_marker(close_marker("x"))

    def test_open_after_close_rejected(self):
        c = VariableConfiguration.final(["x"])
        with pytest.raises(NotFunctionalError):
            c.apply_marker(open_marker("x"))

    def test_unknown_variable_rejected(self):
        with pytest.raises(NotFunctionalError):
            VariableConfiguration.initial(["x"]).apply_marker(open_marker("q"))

    def test_apply_marker_set_open_and_close(self):
        c = VariableConfiguration.initial(["x"])
        c = c.apply_markers({open_marker("x"), close_marker("x")})
        assert c.of("x") == CLOSED

    def test_markers_to(self):
        a = VariableConfiguration.initial(["x", "y"])
        b = VariableConfiguration.from_mapping({"x": CLOSED, "y": OPEN})
        ops = a.markers_to(b)
        assert ops == {
            open_marker("x"),
            close_marker("x"),
            open_marker("y"),
        }

    def test_markers_to_backwards_rejected(self):
        a = VariableConfiguration.final(["x"])
        b = VariableConfiguration.initial(["x"])
        with pytest.raises(NotFunctionalError):
            a.markers_to(b)

    def test_agrees_and_merge(self):
        a = VariableConfiguration.from_mapping({"x": OPEN, "y": WAITING})
        b = VariableConfiguration.from_mapping({"y": WAITING, "z": CLOSED})
        assert a.agrees_with(b)
        merged = a.merge(b)
        assert merged.of("x") == OPEN
        assert merged.of("z") == CLOSED

    def test_disagreement(self):
        a = VariableConfiguration.from_mapping({"x": OPEN})
        b = VariableConfiguration.from_mapping({"x": CLOSED})
        assert not a.agrees_with(b)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_restrict(self):
        a = VariableConfiguration.from_mapping({"x": OPEN, "y": CLOSED})
        assert a.restrict(["y"]) == VariableConfiguration.from_mapping(
            {"y": CLOSED}
        )

    def test_total_order(self):
        a = VariableConfiguration.from_mapping({"x": WAITING})
        b = VariableConfiguration.from_mapping({"x": OPEN})
        c = VariableConfiguration.from_mapping({"x": CLOSED})
        assert a < b < c

    def test_str(self):
        c = VariableConfiguration.from_mapping({"x": OPEN})
        assert str(c) == "<x:o>"


class TestVSetAutomaton:
    def test_requires_initial(self):
        nfa = NFA()
        nfa.add_state()
        with pytest.raises(ValueError):
            VSetAutomaton(nfa, set())

    def test_requires_single_final(self):
        nfa = NFA()
        q = nfa.add_state()
        nfa.set_initial(q)
        with pytest.raises(ValueError):
            VSetAutomaton(nfa, set())

    def test_rejects_foreign_variable_labels(self):
        nfa = NFA()
        a, b = nfa.add_state(), nfa.add_state()
        nfa.set_initial(a)
        nfa.add_final(b)
        nfa.add_transition(a, open_marker("q"), b)
        with pytest.raises(SchemaError):
            VSetAutomaton(nfa, {"x"})

    def test_trimmed_keeps_single_final_when_empty(self):
        nfa = NFA()
        a = nfa.add_state()
        b = nfa.add_state()  # unreachable final
        nfa.set_initial(a)
        nfa.add_final(b)
        automaton = VSetAutomaton(nfa, set())
        trimmed = automaton.trimmed()
        assert trimmed.is_empty_language()
        assert len(trimmed.nfa.finals) == 1

    def test_expand_multi_ops_equivalence(self, check_against_oracle):
        # Build an automaton with one multi-op transition by hand.
        nfa = NFA()
        a, b, c = nfa.add_state(), nfa.add_state(), nfa.add_state()
        nfa.set_initial(a)
        nfa.add_final(c)
        ops = frozenset(
            {
                open_marker("x"),
                close_marker("x"),
                open_marker("y"),
            }
        )
        nfa.add_transition(a, ops, b)
        nfa.add_transition(b, char_pred("a"), b)
        nfa.add_transition(b, close_marker("y"), c)
        automaton = VSetAutomaton(nfa, {"x", "y"})
        expanded = automaton.expand_multi_ops()
        # No marker-set labels remain.
        assert all(
            not isinstance(label, frozenset)
            for _s, label, _d in expanded.nfa.iter_edges()
        )
        got = check_against_oracle(expanded, "aa")
        assert got  # x=[1,1>, y spans prefixes

    def test_expand_empty_set_becomes_epsilon(self):
        nfa = NFA()
        a, b = nfa.add_state(), nfa.add_state()
        nfa.set_initial(a)
        nfa.add_final(b)
        nfa.add_transition(a, frozenset(), b)
        expanded = VSetAutomaton(nfa, set()).expand_multi_ops()
        labels = [label for _s, label, _d in expanded.nfa.iter_edges()]
        assert labels == [EPSILON]

    def test_compacted_preserves_semantics(self, check_against_oracle):
        for pattern, s in [
            ("a*x{a*}a*", "aaa"),
            ("(x{a}|x{b})c?", "ac"),
            (".*x{ab}.*", "abab"),
        ]:
            automaton = compile_regex(pattern)
            compact = automaton.compacted()
            assert compact.n_states <= automaton.n_states
            assert check_against_oracle(compact, s) == oracle_evaluate(
                automaton, s
            )

    def test_compacted_reduces_thompson_bloat(self):
        automaton = compile_regex(".*(x{foo}.*y{bar}|y{bar}.*x{foo}).*")
        compact = automaton.compacted()
        assert compact.n_states < automaton.n_states * 0.6

    def test_to_dot_contains_edges(self):
        automaton = compile_regex("x{a}")
        dot = automaton.to_dot()
        assert "digraph" in dot
        assert "⊢x" in dot

    def test_evaluate_convenience(self):
        rel = compile_regex("x{a}").evaluate("a")
        assert len(rel) == 1


class TestComputeStateConfigurations:
    def test_example_4_1_configurations(self):
        automaton = compile_regex("a*x{a*}a*").compacted()
        configs = compute_state_configurations(automaton)
        states = {c.of("x") for c in configs if c is not None}
        assert states == {WAITING, OPEN, CLOSED}
        assert configs[automaton.initial].of("x") == WAITING
        assert configs[automaton.final].of("x") == CLOSED

    def test_conflict_detection(self):
        nfa = NFA()
        a, b, c = nfa.add_state(), nfa.add_state(), nfa.add_state()
        nfa.set_initial(a)
        nfa.add_final(c)
        nfa.add_transition(a, open_marker("x"), b)
        nfa.add_transition(a, EPSILON, b)
        nfa.add_transition(b, close_marker("x"), c)
        with pytest.raises(NotFunctionalError):
            compute_state_configurations(VSetAutomaton(nfa, {"x"}))

    def test_unreachable_states_get_none(self):
        nfa = NFA()
        a, b = nfa.add_state(), nfa.add_state()
        dead = nfa.add_state()
        nfa.set_initial(a)
        nfa.add_final(b)
        nfa.add_transition(a, EPSILON, b)
        configs = compute_state_configurations(VSetAutomaton(nfa, set()))
        assert configs[dead] is None
