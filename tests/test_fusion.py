"""One-pass multi-query fusion (``submit_all`` / ``extract_all``).

The contract under test: a fused batch — one leveled-NFA sweep per
document answering every member query — is **observably identical** to
Q sequential submissions:

* per-query tuple streams byte-identical (content *and* order) to the
  serial engine and to ``fuse=False`` sequential serving, across the
  pipe and shm transports and for docs/files work alike;
* faults inside a fused task indict only the member whose phase was
  running: the offending query's breaker opens, the innocent members'
  breakers stay closed and keep serving;
* the pre-redesign call forms (``submit(query_id, docs)``,
  ``submit_files(query_id, paths)``, ``submit_counts(query_id, docs)``)
  keep working byte-identically while emitting ``DeprecationWarning``;
* ``register()`` returns a :class:`QueryHandle` usable anywhere a
  query id string is.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.errors import QueryQuarantinedError, TaskTimeoutError
from repro.runtime import (
    CompiledSpanner,
    FaultPlan,
    ParallelSpanner,
    QueryHandle,
    SpannerService,
)
from repro.runtime.fusion import (
    FUSED_ID_PREFIX,
    FusedQuery,
    fused_fingerprint,
    fused_query_id,
    plan_submission,
)
from repro.runtime.store import FileStore

from test_service import (
    DIGIT_FORMULA,
    DOCS,
    WORD_FORMULA,
    canonical,
    equality_engine,
    _require_shm,
)

DEADLINE = 0.5

#: A third regex query with a different shape (wildcard-heavy), so the
#: mixed-cohort tests cover sweep-static and sweep-dynamic members.
UPPER_FORMULA = ".*u{[A-Z]+}.*"


@pytest.fixture(scope="module")
def word_serial():
    return list(CompiledSpanner(WORD_FORMULA).evaluate_many(DOCS))


@pytest.fixture(scope="module")
def digit_serial():
    return list(CompiledSpanner(DIGIT_FORMULA).evaluate_many(DOCS))


@pytest.fixture(scope="module")
def upper_serial():
    return list(CompiledSpanner(UPPER_FORMULA).evaluate_many(DOCS))


# ---------------------------------------------------------------------------
# Planning layer
# ---------------------------------------------------------------------------
class TestPlanning:
    def test_single_member_never_fuses(self):
        assert plan_submission(["q1"]) == ("sequential", ("q1",))

    def test_two_members_fuse_by_default(self):
        mode, ids = plan_submission(["q1", "q2"])
        assert mode == "fused"
        assert sorted(ids) == ["q1", "q2"]

    def test_fuse_false_is_sequential(self):
        assert plan_submission(["q1", "q2"], fuse=False)[0] == "sequential"

    def test_fused_ids_are_order_insensitive_and_prefixed(self):
        a = fused_query_id(["sha-b", "sha-a"])
        b = fused_query_id(["sha-a", "sha-b"])
        assert a == b
        assert a.startswith(FUSED_ID_PREFIX)
        assert fused_fingerprint(["sha-b", "sha-a"]) == fused_fingerprint(
            ["sha-a", "sha-b"]
        )

    def test_fused_query_needs_two_distinct_members(self):
        spanner = CompiledSpanner(WORD_FORMULA)
        with pytest.raises(ValueError):
            FusedQuery([("q1", spanner)])
        with pytest.raises(ValueError):
            FusedQuery([("q1", spanner), ("q1", spanner)])


# ---------------------------------------------------------------------------
# Byte parity: fused vs sequential vs serial
# ---------------------------------------------------------------------------
class TestFusedParity:
    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_mixed_cohorts_byte_identical(
        self, transport, word_serial, digit_serial, upper_serial
    ):
        """Acceptance: regex + equality members fused in one batch, per
        query byte-identical to serial and to fuse=False, on both
        transports."""
        if transport == "shm":
            _require_shm()
        eq_engine, eq_docs = equality_engine()
        # All members must share one batch, so evaluate the equality
        # query over the same corpus the regex members see.
        eq_serial = list(eq_engine.evaluate_many(DOCS))
        with SpannerService(
            workers=2, chunk_size=3, transport=transport
        ) as svc:
            handles = [
                svc.register(CompiledSpanner(WORD_FORMULA)),
                svc.register(CompiledSpanner(DIGIT_FORMULA)),
                svc.register(CompiledSpanner(UPPER_FORMULA)),
                svc.register(eq_engine),
            ]
            fused = svc.submit_all(DOCS, queries=handles)
            sequential = svc.submit_all(DOCS, queries=handles, fuse=False)
            expected = [word_serial, digit_serial, upper_serial, eq_serial]
            for handle, serial in zip(handles, expected):
                got = fused[handle].result(timeout=120)
                assert canonical(got) == canonical(serial)
                assert canonical(
                    sequential[handle].result(timeout=120)
                ) == canonical(serial)

    def test_files_op_byte_identical(
        self, tmp_path, word_serial, digit_serial
    ):
        paths = []
        for i, doc in enumerate(DOCS):
            p = tmp_path / f"doc{i}.txt"
            p.write_text(doc)
            paths.append(str(p))
        with SpannerService(workers=2, chunk_size=4) as svc:
            q_word = svc.register(CompiledSpanner(WORD_FORMULA))
            q_digit = svc.register(CompiledSpanner(DIGIT_FORMULA))
            out = svc.submit_all(paths, kind="files")
            assert canonical(out[q_word].result(timeout=120)) == canonical(
                word_serial
            )
            assert canonical(out[q_digit].result(timeout=120)) == canonical(
                digit_serial
            )

    def test_queries_none_means_every_registered(self, word_serial):
        with SpannerService(workers=1, chunk_size=8) as svc:
            q_word = svc.register(CompiledSpanner(WORD_FORMULA))
            svc.register(CompiledSpanner(DIGIT_FORMULA))
            out = svc.submit_all(DOCS)
            assert set(out) == set(svc.queries)
            assert canonical(out[q_word].result(timeout=120)) == canonical(
                word_serial
            )

    def test_limit_is_the_serial_prefix(self):
        with SpannerService(workers=1, chunk_size=8) as svc:
            q_word = svc.register(CompiledSpanner(WORD_FORMULA))
            q_digit = svc.register(CompiledSpanner(DIGIT_FORMULA))
            full = svc.submit_all(DOCS)
            capped = svc.submit_all(DOCS, limit=1)
            for qid in (q_word, q_digit):
                want = [per_doc[:1] for per_doc in full[qid].result(120)]
                assert capped[qid].result(timeout=120) == want

    def test_extract_all_async_parity(self, word_serial, digit_serial):
        async def scenario():
            with SpannerService(workers=2, chunk_size=4) as svc:
                q_word = svc.register(CompiledSpanner(WORD_FORMULA))
                q_digit = svc.register(CompiledSpanner(DIGIT_FORMULA))
                return q_word, q_digit, await svc.extract_all(DOCS)

        q_word, q_digit, out = asyncio.run(scenario())
        assert canonical(out[q_word]) == canonical(word_serial)
        assert canonical(out[q_digit]) == canonical(digit_serial)

    def test_duplicate_queries_rejected(self):
        with SpannerService(workers=1) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            with pytest.raises(ValueError):
                svc.submit_all(DOCS[:2], queries=[qid, qid])

    def test_fused_artifact_cached_and_revived(self, tmp_path, word_serial):
        """The fused engine lands in the artifact store under its
        member-fingerprint key and is revived on a warm start."""
        store = FileStore(str(tmp_path / "cache"))
        for _round in range(2):
            with SpannerService(
                workers=1, chunk_size=8, artifact_store=store
            ) as svc:
                q_word = svc.register(WORD_FORMULA)
                svc.register(DIGIT_FORMULA)
                out = svc.submit_all(DOCS)
                assert canonical(
                    out[q_word].result(timeout=120)
                ) == canonical(word_serial)
        fused_keys = [
            key for key, _size, _mtime in store.entries()
            if key.startswith("f")
        ]
        assert fused_keys, "fused artifact missing from the store"

    def test_fused_ids_stay_out_of_introspection(self):
        with SpannerService(workers=1, chunk_size=8) as svc:
            svc.register(CompiledSpanner(WORD_FORMULA))
            svc.register(CompiledSpanner(DIGIT_FORMULA))
            for fut in svc.submit_all(DOCS[:4]).values():
                fut.result(timeout=120)
            assert all(
                not qid.startswith(FUSED_ID_PREFIX) for qid in svc.queries
            )
            assert svc.health()["queries_registered"] == 2


# ---------------------------------------------------------------------------
# ParallelSpanner routes through the shared decision point
# ---------------------------------------------------------------------------
class TestParallelSpannerFuseKnob:
    @pytest.mark.parametrize("fuse", [True, False])
    def test_single_query_session_unchanged(self, fuse, word_serial):
        with ParallelSpanner(WORD_FORMULA, workers=2, fuse=fuse) as engine:
            out = list(engine.evaluate_many(DOCS))
        assert canonical(out) == canonical(word_serial)

    def test_workers_one_serial_unchanged(self, word_serial):
        engine = ParallelSpanner(WORD_FORMULA, workers=1)
        assert canonical(list(engine.evaluate_many(DOCS))) == canonical(
            word_serial
        )


# ---------------------------------------------------------------------------
# Faults inside fused tasks: per-member indictment
# ---------------------------------------------------------------------------
class TestFusedFaults:
    def test_member_crash_indicts_only_offender(self, word_serial):
        """A member-scoped crash takes the fused task down, but only
        the offending member's breaker opens; the innocent member keeps
        serving and stays byte-identical."""
        with SpannerService(workers=1, chunk_size=8) as probe:
            bad = str(probe.register(CompiledSpanner(DIGIT_FORMULA)))
        plan = FaultPlan().crash(task=0, member=bad)  # every attempt
        with SpannerService(
            workers=1, chunk_size=len(DOCS), fault_plan=plan,
            quarantine_after=1, quarantine_cooldown=60.0,
        ) as svc:
            q_word = svc.register(CompiledSpanner(WORD_FORMULA))
            q_digit = svc.register(CompiledSpanner(DIGIT_FORMULA))
            assert str(q_digit) == bad
            out = svc.submit_all(DOCS)
            with pytest.raises(RuntimeError, match="giving up"):
                out[q_digit].result(timeout=120)
            # The fused task died as a unit: the sibling's future fails
            # too — but the breaker ledger knows who was running.
            with pytest.raises(Exception):
                out[q_word].result(timeout=120)
            assert svc.quarantined_queries == (str(q_digit),)
            with pytest.raises(QueryQuarantinedError):
                svc.submit_all(DOCS, queries=[q_word, q_digit], fuse=False)[
                    q_digit
                ].result(timeout=120)
            # The innocent member still serves, bytes intact.
            healthy = svc.submit(DOCS, queries=q_word).result(timeout=120)
            assert canonical(healthy) == canonical(word_serial)

    def test_member_hang_timeout_names_offender(self, word_serial):
        """A member-scoped hang trips the deadline; the timeout names
        the indicted member and only its breaker is charged."""
        with SpannerService(workers=1, chunk_size=8) as probe:
            bad = str(probe.register(CompiledSpanner(DIGIT_FORMULA)))
        plan = FaultPlan().hang(task=0, member=bad)
        with SpannerService(
            workers=1, chunk_size=len(DOCS), fault_plan=plan,
            task_timeout=DEADLINE, quarantine_after=1,
            quarantine_cooldown=60.0,
        ) as svc:
            q_word = svc.register(CompiledSpanner(WORD_FORMULA))
            q_digit = svc.register(CompiledSpanner(DIGIT_FORMULA))
            out = svc.submit_all(DOCS)
            with pytest.raises(TaskTimeoutError, match="serving member"):
                out[q_digit].result(timeout=120)
            deadline = time.time() + 10
            while time.time() < deadline and not svc.quarantined_queries:
                time.sleep(0.05)
            assert svc.quarantined_queries == (str(q_digit),)
            healthy = svc.submit(DOCS, queries=q_word).result(timeout=120)
            assert canonical(healthy) == canonical(word_serial)

    def test_first_attempt_crash_retries_byte_identical(
        self, word_serial, digit_serial
    ):
        """A fused task crashing once and succeeding on re-dispatch is
        invisible in the results."""
        with SpannerService(workers=1, chunk_size=8) as probe:
            bad = str(probe.register(CompiledSpanner(DIGIT_FORMULA)))
        plan = FaultPlan().crash(task=0, attempts=(1,), member=bad)
        with SpannerService(
            workers=2, chunk_size=4, fault_plan=plan
        ) as svc:
            q_word = svc.register(CompiledSpanner(WORD_FORMULA))
            q_digit = svc.register(CompiledSpanner(DIGIT_FORMULA))
            out = svc.submit_all(DOCS)
            assert canonical(out[q_word].result(timeout=120)) == canonical(
                word_serial
            )
            assert canonical(out[q_digit].result(timeout=120)) == canonical(
                digit_serial
            )
            assert svc.workers_crashed >= 1

    def test_quarantined_member_filtered_not_fatal(self, word_serial):
        """submit_all with one quarantined member fails that member's
        future synchronously and serves the rest (fused or not)."""
        with SpannerService(
            workers=1, chunk_size=len(DOCS), quarantine_after=1,
            quarantine_cooldown=60.0,
        ) as svc:
            q_word = svc.register(CompiledSpanner(WORD_FORMULA))
            q_digit = svc.register(CompiledSpanner(DIGIT_FORMULA))
            # Open the digit breaker directly via the ledger: a fused
            # batch with a poisoned member is exercised above; here we
            # only need the filtered-submission behavior.
            from repro.runtime.service import _Breaker

            with svc._lock:
                breaker = svc._breakers.setdefault(str(q_digit), _Breaker())
                breaker.failures = 1
                breaker.opened_at = time.monotonic()
            out = svc.submit_all(DOCS)
            with pytest.raises(QueryQuarantinedError):
                out[q_digit].result(timeout=120)
            assert canonical(out[q_word].result(timeout=120)) == canonical(
                word_serial
            )


# ---------------------------------------------------------------------------
# API redesign: QueryHandle and deprecation shims
# ---------------------------------------------------------------------------
class TestUnifiedSubmitAPI:
    def test_register_returns_query_handle(self):
        with SpannerService(workers=1, task_timeout=2.0, max_tuples=7) as svc:
            handle = svc.register(CompiledSpanner(WORD_FORMULA))
            assert isinstance(handle, QueryHandle)
            assert isinstance(handle, str)
            assert handle == str(handle)
            assert handle.fingerprint and len(handle.fingerprint) == 64
            assert handle.timeout == 2.0
            assert handle.max_tuples == 7
            assert handle.max_result_bytes is None

    def test_legacy_submit_warns_and_matches(self, word_serial):
        with SpannerService(workers=1, chunk_size=8) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            with pytest.warns(DeprecationWarning, match="submit"):
                legacy = svc.submit(qid, DOCS).result(timeout=120)
            modern = svc.submit(DOCS, queries=qid).result(timeout=120)
            assert canonical(legacy) == canonical(modern)
            assert canonical(modern) == canonical(word_serial)

    def test_legacy_submit_files_warns_and_matches(
        self, tmp_path, word_serial
    ):
        paths = []
        for i, doc in enumerate(DOCS):
            p = tmp_path / f"doc{i}.txt"
            p.write_text(doc)
            paths.append(str(p))
        with SpannerService(workers=1, chunk_size=8) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            with pytest.warns(DeprecationWarning, match="submit_files"):
                legacy = svc.submit_files(qid, paths).result(timeout=120)
            modern = svc.submit_files(paths, queries=qid).result(timeout=120)
            assert canonical(legacy) == canonical(modern)
            assert canonical(modern) == canonical(word_serial)

    def test_legacy_submit_counts_warns_and_matches(self):
        with SpannerService(workers=1, chunk_size=8) as svc:
            qid = svc.register(CompiledSpanner(WORD_FORMULA))
            with pytest.warns(DeprecationWarning, match="submit_counts"):
                legacy = svc.submit_counts(qid, DOCS).result(timeout=120)
            modern = svc.submit_counts(DOCS, queries=qid).result(timeout=120)
            assert legacy == modern
            serial = CompiledSpanner(WORD_FORMULA)
            assert modern == list(serial.count_many(DOCS))

    def test_counts_never_fuse(self):
        with SpannerService(workers=1, chunk_size=8) as svc:
            q_word = svc.register(CompiledSpanner(WORD_FORMULA))
            q_digit = svc.register(CompiledSpanner(DIGIT_FORMULA))
            out = svc.submit_all(DOCS, kind="counts")
            word = CompiledSpanner(WORD_FORMULA)
            digit = CompiledSpanner(DIGIT_FORMULA)
            assert out[q_word].result(timeout=120) == list(
                word.count_many(DOCS)
            )
            assert out[q_digit].result(timeout=120) == list(
                digit.count_many(DOCS)
            )

    def test_bad_kind_rejected(self):
        with SpannerService(workers=1) as svc:
            svc.register(CompiledSpanner(WORD_FORMULA))
            with pytest.raises(ValueError):
                svc.submit_all(DOCS[:2], kind="frobnicate")
